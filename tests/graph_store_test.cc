// Graph-store suite: the arena-backed CausalGraph node store and the
// cross-rule parallel grounding must be invisible to consumers — node-id
// columns stay row-aligned with the instance's fact rows, node args read
// back exactly, and the grounded graph (ids, adjacency, values) is
// bit-identical across thread counts on MIMIC and SYNTH-REVIEW, where the
// cross-rule merge threshold is actually crossed.

#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "carl/carl.h"
#include "datagen/mimic.h"
#include "exec/morsel.h"
#include "fixtures.h"
#include "relational/storage_stats.h"

namespace carl {
namespace {

using test_fixtures::GraphFingerprint;
using test_fixtures::GraphWorkloads;
using test_fixtures::NamedDataset;
using test_fixtures::ScopedThreads;

// The invariant the node-id columns rely on: for every schema attribute,
// the first NumRows(predicate) entries of NodesOfAttribute are the
// per-row node ids, in row order.
TEST(GraphStoreTest, NodeIdColumnsAreRowAligned) {
  for (NamedDataset& wl : GraphWorkloads()) {
    Result<RelationalCausalModel> model = RelationalCausalModel::Parse(
        *wl.dataset.schema, wl.dataset.model_text);
    ASSERT_TRUE(model.ok()) << wl.name << ": " << model.status();
    Result<GroundedModel> grounded = GroundModel(*wl.dataset.instance, *model);
    ASSERT_TRUE(grounded.ok()) << wl.name << ": " << grounded.status();
    const CausalGraph& graph = grounded->graph();
    const Schema& schema = grounded->schema();

    for (const AttributeDef& attr : schema.attributes()) {
      const RelationView rows = wl.dataset.instance->Rows(attr.predicate);
      const std::vector<NodeId>& col = graph.NodesOfAttribute(attr.id);
      ASSERT_GE(col.size(), rows.size()) << wl.name << " " << attr.name;
      for (size_t r = 0; r < rows.size(); ++r) {
        GroundedAttribute node = graph.node(col[r]);
        ASSERT_EQ(node.attribute, attr.id) << wl.name << " " << attr.name;
        ASSERT_EQ(node.args, rows[r])
            << wl.name << " " << attr.name << " row " << r;
      }
    }
  }
}

// Full structural equality of serial vs cross-rule-parallel grounding:
// node count, per-node attribute/args, adjacency spans, values, and the
// folded fingerprint, at threads 1 vs {2, 4}.
TEST(GraphStoreTest, CrossRuleGroundingIdenticalAcrossThreadCounts) {
  for (NamedDataset& wl : GraphWorkloads()) {
    Result<RelationalCausalModel> model = RelationalCausalModel::Parse(
        *wl.dataset.schema, wl.dataset.model_text);
    ASSERT_TRUE(model.ok()) << wl.name;

    std::optional<GroundedModel> serial;
    uint64_t serial_fp = 0;
    {
      ScopedThreads scoped(1);
      Result<GroundedModel> grounded =
          GroundModel(*wl.dataset.instance, *model);
      ASSERT_TRUE(grounded.ok()) << wl.name << ": " << grounded.status();
      serial_fp = GraphFingerprint(*grounded);
      serial.emplace(std::move(*grounded));
    }
    for (int threads : {2, 4}) {
      ScopedThreads scoped(threads);
      Result<GroundedModel> parallel =
          GroundModel(*wl.dataset.instance, *model);
      ASSERT_TRUE(parallel.ok()) << wl.name;
      ASSERT_EQ(parallel->graph().num_nodes(), serial->graph().num_nodes())
          << wl.name << " threads=" << threads;
      ASSERT_EQ(parallel->graph().num_edges(), serial->graph().num_edges())
          << wl.name << " threads=" << threads;
      EXPECT_EQ(parallel->num_groundings(), serial->num_groundings())
          << wl.name << " threads=" << threads;
      for (NodeId id = 0;
           id < static_cast<NodeId>(serial->graph().num_nodes()); ++id) {
        ASSERT_TRUE(serial->graph().node(id) == parallel->graph().node(id))
            << wl.name << " node " << id << " threads=" << threads;
        ASSERT_EQ(serial->graph().Parents(id), parallel->graph().Parents(id))
            << wl.name << " node " << id << " threads=" << threads;
        ASSERT_EQ(serial->graph().Children(id),
                  parallel->graph().Children(id))
            << wl.name << " node " << id << " threads=" << threads;
      }
      EXPECT_EQ(GraphFingerprint(*parallel), serial_fp)
          << wl.name << " differs at threads=" << threads;
    }
  }
}

// Determinism under stealing, end-to-end: a skew-stressed MIMIC instance
// (MimicConfig::prescription_skew piles ~100x the prescriptions onto the
// head-of-index patients) makes the steal schedule genuinely random —
// the hot slice pins one worker while the others drain and start
// stealing at uncontrolled points. The grounded graph must fingerprint
// identically to the serial build at threads {1, 2, 4}, with the steal
// switch both on and off (static partition), across repeated runs.
TEST(GraphStoreTest, SkewedGroundingIdenticalUnderStealSchedules) {
  datagen::MimicConfig config;
  config.num_patients = 3000;
  config.num_caregivers = 120;
  config.prescription_skew = 100;
  Result<datagen::Dataset> data = datagen::GenerateMimic(config);
  ASSERT_TRUE(data.ok()) << data.status();
  Result<RelationalCausalModel> model =
      RelationalCausalModel::Parse(*data->schema, data->model_text);
  ASSERT_TRUE(model.ok());

  uint64_t serial_fp = 0;
  {
    ScopedThreads scoped(1);
    Result<GroundedModel> serial = GroundModel(*data->instance, *model);
    ASSERT_TRUE(serial.ok()) << serial.status();
    serial_fp = GraphFingerprint(*serial);
  }
  const uint64_t steals_before = exec::MorselStealCount();
  for (int round = 0; round < 2; ++round) {
    for (bool stealing : {true, false}) {
      exec::SetMorselStealing(stealing);
      for (int threads : {2, 4}) {
        ScopedThreads scoped(threads);
        Result<GroundedModel> parallel = GroundModel(*data->instance, *model);
        ASSERT_TRUE(parallel.ok());
        ASSERT_EQ(GraphFingerprint(*parallel), serial_fp)
            << "threads=" << threads << " stealing=" << stealing
            << " round=" << round;
      }
    }
  }
  exec::SetMorselStealing(true);
  EXPECT_GT(exec::MorselStealCount(), steals_before)
      << "skew-stressed grounding at 4 threads never exercised a steal";
}

// The grounding hot path must intern every node through span fast paths:
// zero owned per-node Tuples, at every thread count.
TEST(GraphStoreTest, GroundingBuildsZeroOwnedNodeTuples) {
  for (NamedDataset& wl : GraphWorkloads()) {
    Result<RelationalCausalModel> model = RelationalCausalModel::Parse(
        *wl.dataset.schema, wl.dataset.model_text);
    ASSERT_TRUE(model.ok()) << wl.name;
    for (int threads : {1, 4}) {
      ScopedThreads scoped(threads);
      storage_stats::ScopedAllocCounter allocs;
      Result<GroundedModel> grounded =
          GroundModel(*wl.dataset.instance, *model);
      ASSERT_TRUE(grounded.ok()) << wl.name;
      EXPECT_EQ(allocs.graph_node_delta(), 0u)
          << wl.name << " threads=" << threads
          << ": per-node Tuple path crept back into grounding";
      EXPECT_EQ(allocs.eval_result_delta(), 0u)
          << wl.name << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace carl
