// Graph-store suite: the arena-backed CausalGraph node store and the
// cross-rule parallel grounding must be invisible to consumers — node-id
// columns stay row-aligned with the instance's fact rows, node args read
// back exactly, and the grounded graph (ids, adjacency, values) is
// bit-identical across thread counts on MIMIC and SYNTH-REVIEW, where the
// cross-rule merge threshold is actually crossed.

#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "carl/carl.h"
#include "datagen/mimic.h"
#include "datagen/review.h"
#include "relational/storage_stats.h"

namespace carl {
namespace {

class ScopedThreads {
 public:
  explicit ScopedThreads(int threads)
      : prev_(ExecContext::Global().threads()) {
    ExecContext::Global().set_threads(threads);
  }
  ~ScopedThreads() { ExecContext::Global().set_threads(prev_); }

 private:
  int prev_;
};

struct NamedDataset {
  const char* name;
  datagen::Dataset dataset;
};

// MIMIC and SYNTH-REVIEW sized so the total binding count crosses the
// cross-rule parallel-merge threshold (the serial fallback would make
// the threads=N legs vacuous).
std::vector<NamedDataset> Workloads() {
  std::vector<NamedDataset> out;
  {
    datagen::MimicConfig config;
    config.num_patients = 3000;
    config.num_caregivers = 120;
    Result<datagen::Dataset> mimic = datagen::GenerateMimic(config);
    CARL_CHECK_OK(mimic.status());
    out.push_back(NamedDataset{"MIMIC", std::move(*mimic)});
  }
  {
    datagen::ReviewConfig config;
    config.num_authors = 800;
    config.num_institutions = 40;
    config.num_papers = 6000;
    config.num_venues = 20;
    Result<datagen::ReviewData> review = datagen::GenerateReviewData(config);
    CARL_CHECK_OK(review.status());
    out.push_back(NamedDataset{"SYNTH-REVIEW",
                               std::move(review->dataset)});
  }
  return out;
}

// One stable fingerprint of a grounded graph: names, parent lists, and
// value bit patterns folded in node order.
uint64_t GraphFingerprint(const GroundedModel& grounded) {
  auto mix = [](uint64_t h, uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 12) + (h >> 4);
    return h;
  };
  auto mix_string = [&mix](uint64_t h, const std::string& s) {
    for (unsigned char c : s) h = mix(h, c);
    return h;
  };
  const CausalGraph& graph = grounded.graph();
  uint64_t h = 0xcbf29ce484222325ull;
  h = mix(h, graph.num_nodes());
  h = mix(h, graph.num_edges());
  h = mix(h, grounded.num_groundings());
  for (NodeId id = 0; id < static_cast<NodeId>(graph.num_nodes()); ++id) {
    h = mix_string(h, grounded.NodeName(id));
    for (NodeId p : graph.Parents(id)) h = mix(h, static_cast<uint64_t>(p));
    for (NodeId c : graph.Children(id)) h = mix(h, static_cast<uint64_t>(c));
    std::optional<double> v = grounded.NodeValue(id);
    uint64_t bits = 0;
    if (v.has_value()) {
      static_assert(sizeof(double) == sizeof(uint64_t), "");
      std::memcpy(&bits, &*v, sizeof(bits));
      bits += 1;  // distinguish "0.0" from "missing"
    }
    h = mix(h, bits);
  }
  return h;
}

// The invariant the node-id columns rely on: for every schema attribute,
// the first NumRows(predicate) entries of NodesOfAttribute are the
// per-row node ids, in row order.
TEST(GraphStoreTest, NodeIdColumnsAreRowAligned) {
  for (NamedDataset& wl : Workloads()) {
    Result<RelationalCausalModel> model = RelationalCausalModel::Parse(
        *wl.dataset.schema, wl.dataset.model_text);
    ASSERT_TRUE(model.ok()) << wl.name << ": " << model.status();
    Result<GroundedModel> grounded = GroundModel(*wl.dataset.instance, *model);
    ASSERT_TRUE(grounded.ok()) << wl.name << ": " << grounded.status();
    const CausalGraph& graph = grounded->graph();
    const Schema& schema = grounded->schema();

    for (const AttributeDef& attr : schema.attributes()) {
      const RelationView rows = wl.dataset.instance->Rows(attr.predicate);
      const std::vector<NodeId>& col = graph.NodesOfAttribute(attr.id);
      ASSERT_GE(col.size(), rows.size()) << wl.name << " " << attr.name;
      for (size_t r = 0; r < rows.size(); ++r) {
        GroundedAttribute node = graph.node(col[r]);
        ASSERT_EQ(node.attribute, attr.id) << wl.name << " " << attr.name;
        ASSERT_EQ(node.args, rows[r])
            << wl.name << " " << attr.name << " row " << r;
      }
    }
  }
}

// Full structural equality of serial vs cross-rule-parallel grounding:
// node count, per-node attribute/args, adjacency spans, values, and the
// folded fingerprint, at threads 1 vs {2, 4}.
TEST(GraphStoreTest, CrossRuleGroundingIdenticalAcrossThreadCounts) {
  for (NamedDataset& wl : Workloads()) {
    Result<RelationalCausalModel> model = RelationalCausalModel::Parse(
        *wl.dataset.schema, wl.dataset.model_text);
    ASSERT_TRUE(model.ok()) << wl.name;

    std::optional<GroundedModel> serial;
    uint64_t serial_fp = 0;
    {
      ScopedThreads scoped(1);
      Result<GroundedModel> grounded =
          GroundModel(*wl.dataset.instance, *model);
      ASSERT_TRUE(grounded.ok()) << wl.name << ": " << grounded.status();
      serial_fp = GraphFingerprint(*grounded);
      serial.emplace(std::move(*grounded));
    }
    for (int threads : {2, 4}) {
      ScopedThreads scoped(threads);
      Result<GroundedModel> parallel =
          GroundModel(*wl.dataset.instance, *model);
      ASSERT_TRUE(parallel.ok()) << wl.name;
      ASSERT_EQ(parallel->graph().num_nodes(), serial->graph().num_nodes())
          << wl.name << " threads=" << threads;
      ASSERT_EQ(parallel->graph().num_edges(), serial->graph().num_edges())
          << wl.name << " threads=" << threads;
      EXPECT_EQ(parallel->num_groundings(), serial->num_groundings())
          << wl.name << " threads=" << threads;
      for (NodeId id = 0;
           id < static_cast<NodeId>(serial->graph().num_nodes()); ++id) {
        ASSERT_TRUE(serial->graph().node(id) == parallel->graph().node(id))
            << wl.name << " node " << id << " threads=" << threads;
        ASSERT_EQ(serial->graph().Parents(id), parallel->graph().Parents(id))
            << wl.name << " node " << id << " threads=" << threads;
        ASSERT_EQ(serial->graph().Children(id),
                  parallel->graph().Children(id))
            << wl.name << " node " << id << " threads=" << threads;
      }
      EXPECT_EQ(GraphFingerprint(*parallel), serial_fp)
          << wl.name << " differs at threads=" << threads;
    }
  }
}

// The grounding hot path must intern every node through span fast paths:
// zero owned per-node Tuples, at every thread count.
TEST(GraphStoreTest, GroundingBuildsZeroOwnedNodeTuples) {
  for (NamedDataset& wl : Workloads()) {
    Result<RelationalCausalModel> model = RelationalCausalModel::Parse(
        *wl.dataset.schema, wl.dataset.model_text);
    ASSERT_TRUE(model.ok()) << wl.name;
    for (int threads : {1, 4}) {
      ScopedThreads scoped(threads);
      storage_stats::ScopedAllocCounter allocs;
      Result<GroundedModel> grounded =
          GroundModel(*wl.dataset.instance, *model);
      ASSERT_TRUE(grounded.ok()) << wl.name;
      EXPECT_EQ(allocs.graph_node_delta(), 0u)
          << wl.name << " threads=" << threads
          << ": per-node Tuple path crept back into grounding";
      EXPECT_EQ(allocs.eval_result_delta(), 0u)
          << wl.name << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace carl
