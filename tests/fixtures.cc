#include "fixtures.h"

#include <algorithm>
#include <cstring>
#include <optional>

#include "datagen/mimic.h"
#include "datagen/nis.h"
#include "datagen/review.h"
#include "datagen/review_toy.h"

namespace carl {
namespace test_fixtures {

datagen::Dataset ReviewToyDataset() {
  Result<datagen::Dataset> review = datagen::MakeReviewToy();
  CARL_CHECK_OK(review.status());
  return std::move(*review);
}

datagen::Dataset MiniMimicDataset(size_t num_patients,
                                  size_t num_caregivers) {
  datagen::MimicConfig config;
  config.num_patients = num_patients;
  config.num_caregivers = num_caregivers;
  Result<datagen::Dataset> mimic = datagen::GenerateMimic(config);
  CARL_CHECK_OK(mimic.status());
  return std::move(*mimic);
}

datagen::Dataset MiniNisDataset(size_t num_admissions,
                                size_t num_hospitals) {
  datagen::NisConfig config;
  config.num_admissions = num_admissions;
  config.num_hospitals = num_hospitals;
  Result<datagen::Dataset> nis = datagen::GenerateNis(config);
  CARL_CHECK_OK(nis.status());
  return std::move(*nis);
}

datagen::Dataset SynthReviewDataset(size_t num_authors,
                                    size_t num_institutions,
                                    size_t num_papers, size_t num_venues) {
  datagen::ReviewConfig config;
  config.num_authors = num_authors;
  config.num_institutions = num_institutions;
  config.num_papers = num_papers;
  config.num_venues = num_venues;
  Result<datagen::ReviewData> review = datagen::GenerateReviewData(config);
  CARL_CHECK_OK(review.status());
  return std::move(review->dataset);
}

std::vector<NamedDataset> StreamWorkloads() {
  std::vector<NamedDataset> out;
  out.push_back(NamedDataset{"REVIEW", ReviewToyDataset()});
  out.push_back(NamedDataset{"MIMIC", MiniMimicDataset()});
  out.push_back(NamedDataset{"NIS", MiniNisDataset()});
  return out;
}

std::vector<NamedDataset> GraphWorkloads() {
  std::vector<NamedDataset> out;
  out.push_back(NamedDataset{"MIMIC", MiniMimicDataset()});
  out.push_back(NamedDataset{"SYNTH-REVIEW", SynthReviewDataset()});
  return out;
}

Schema MakePersonItemSchema() {
  Schema schema;
  CARL_CHECK_OK(schema.AddEntity("Person").status());
  CARL_CHECK_OK(schema.AddEntity("Item").status());
  CARL_CHECK_OK(schema.AddRelationship("Owns", {"Person", "Item"}).status());
  CARL_CHECK_OK(
      schema.AddAttribute("Age", "Person", true, ValueType::kDouble).status());
  CARL_CHECK_OK(
      schema.AddAttribute("Price", "Item", true, ValueType::kDouble).status());
  return schema;
}

uint64_t GraphFingerprint(const GroundedModel& grounded) {
  auto mix = [](uint64_t h, uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 12) + (h >> 4);
    return h;
  };
  auto mix_string = [&mix](uint64_t h, const std::string& s) {
    for (unsigned char c : s) h = mix(h, c);
    return h;
  };
  const CausalGraph& graph = grounded.graph();
  uint64_t h = 0xcbf29ce484222325ull;
  h = mix(h, graph.num_nodes());
  h = mix(h, graph.num_edges());
  h = mix(h, grounded.num_groundings());
  for (NodeId id = 0; id < static_cast<NodeId>(graph.num_nodes()); ++id) {
    h = mix_string(h, grounded.NodeName(id));
    for (NodeId p : graph.Parents(id)) h = mix(h, static_cast<uint64_t>(p));
    for (NodeId c : graph.Children(id)) h = mix(h, static_cast<uint64_t>(c));
    std::optional<double> v = grounded.NodeValue(id);
    uint64_t bits = 0;
    if (v.has_value()) {
      static_assert(sizeof(double) == sizeof(uint64_t), "");
      std::memcpy(&bits, &*v, sizeof(bits));
      bits += 1;  // distinguish "0.0" from "missing"
    }
    h = mix(h, bits);
  }
  return h;
}

CanonicalGraph Canonicalize(const GroundedModel& grounded) {
  CanonicalGraph canon;
  const CausalGraph& graph = grounded.graph();
  for (NodeId id = 0; id < static_cast<NodeId>(graph.num_nodes()); ++id) {
    std::string name = grounded.NodeName(id);
    canon.nodes.push_back(name);
    for (NodeId p : graph.Parents(id)) {
      canon.edges.push_back(grounded.NodeName(p) + " -> " + name);
    }
    std::optional<double> v = grounded.NodeValue(id);
    canon.values.push_back(
        name + " = " + (v.has_value() ? std::to_string(*v) : "missing"));
  }
  std::sort(canon.nodes.begin(), canon.nodes.end());
  std::sort(canon.edges.begin(), canon.edges.end());
  std::sort(canon.values.begin(), canon.values.end());
  return canon;
}

}  // namespace test_fixtures
}  // namespace carl
