// Model-level tests on the simulated MIMIC-III: the engine must detect the
// paper's adjustment set (parents of SelfPay = demographics + diagnosis)
// and no spurious interference between patients.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/explain.h"
#include "datagen/mimic.h"

namespace carl {
namespace {

class MimicModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    datagen::MimicConfig config;
    config.num_patients = 2500;
    config.num_caregivers = 120;
    config.seed = 77;
    Result<datagen::Dataset> data = datagen::GenerateMimic(config);
    CARL_CHECK_OK(data.status());
    data_ = std::move(*data);
    Result<RelationalCausalModel> model =
        RelationalCausalModel::Parse(*data_.schema, data_.model_text);
    CARL_CHECK_OK(model.status());
    Result<std::unique_ptr<CarlEngine>> engine =
        CarlEngine::Create(data_.instance.get(), std::move(*model));
    CARL_CHECK_OK(engine.status());
    engine_ = std::move(*engine);
  }
  datagen::Dataset data_;
  std::unique_ptr<CarlEngine> engine_;
};

TEST_F(MimicModelTest, AdjustmentSetIsParentsOfSelfPay) {
  EngineOptions options;
  options.check_criterion = true;
  Result<QueryExplanation> explanation =
      ExplainQuery(engine_.get(), "Death[P] <= SelfPay[P]?", options);
  ASSERT_TRUE(explanation.ok());
  EXPECT_FALSE(explanation->relational);  // no patient interference
  EXPECT_TRUE(explanation->criterion_ok);

  std::vector<std::string> detected;
  for (const CovariateSummary& c : explanation->covariates) {
    EXPECT_EQ(c.role, "own");
    detected.push_back(c.attribute);
  }
  std::sort(detected.begin(), detected.end());
  // Parents of SelfPay in the model: Eth, Religion, Sex, Age, Diag.
  EXPECT_EQ(detected, (std::vector<std::string>{"Age", "Diag", "Eth",
                                                "Religion", "Sex"}));
}

TEST_F(MimicModelTest, DoseQueryUnifiesPrescriptionsOntoPatients) {
  // Dose lives on Prescription; asking about its effect on patient-level
  // Len requires unification through Given. (The inverse direction —
  // patient treatment, prescription response — is the common one; both
  // exercise the relational-path machinery.)
  Result<QueryAnswer> answer = engine_->Answer("Dose[D] <= SelfPay[P]?");
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->ate->response_attribute, "AVG_Dose_unified");
  EXPECT_GT(answer->ate->num_units, 1000u);
  // Self-payers are sicker and receive higher doses (naively); adjusting
  // for diagnosis removes most of it. Both estimates stay finite.
  EXPECT_GT(answer->ate->naive.difference, 0.0);
}

TEST_F(MimicModelTest, LengthOfStayEffectIsNegative) {
  Result<QueryAnswer> answer = engine_->Answer("Len[P] <= SelfPay[P]?");
  ASSERT_TRUE(answer.ok());
  EXPECT_LT(answer->ate->ate.value, 0.0);       // the causal -26h
  EXPECT_LT(answer->ate->naive.difference,
            answer->ate->ate.value);            // naive exaggerates
}

TEST_F(MimicModelTest, EstimatorsAgreeOnDirection) {
  for (EstimatorKind kind :
       {EstimatorKind::kRegression, EstimatorKind::kIpw,
        EstimatorKind::kStratification}) {
    EngineOptions options;
    options.estimator = kind;
    Result<QueryAnswer> answer =
        engine_->Answer("Death[P] <= SelfPay[P]?", options);
    ASSERT_TRUE(answer.ok()) << EstimatorKindToString(kind);
    // Adjusted effect is far below the (confounded) naive difference.
    EXPECT_LT(answer->ate->ate.value,
              answer->ate->naive.difference * 0.75)
        << EstimatorKindToString(kind);
  }
}

}  // namespace
}  // namespace carl
