// Binding-stream equivalence suite: the columnar BindingTable path
// (evaluator arena -> shard-order InsertDistinct merge -> grounding) must
// reproduce the legacy owned-Tuple path — same bindings, same order, same
// grounded graph — on the REVIEW / MIMIC / NIS workloads at CARL_THREADS
// 1 and 4. Also covers the overflow-attribute round-trip through the
// typed per-attribute value columns and the session-level binding-table
// cache.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "carl/carl.h"
#include "datagen/review_toy.h"
#include "fixtures.h"

namespace carl {
namespace {

using test_fixtures::NamedDataset;
using test_fixtures::ScopedThreads;
using test_fixtures::StreamWorkloads;

// Replays the historical EnumerateBindings: per-shard owned Tuples merged
// first-occurrence through an unordered_set, in shard order.
std::vector<Tuple> LegacyTupleMerge(const QueryEvaluator& evaluator,
                                    const PreparedQuery& prepared,
                                    const std::vector<std::string>& vars,
                                    size_t shards) {
  std::vector<Tuple> merged;
  std::unordered_set<Tuple, TupleHash> seen;
  for (size_t s = 0; s < shards; ++s) {
    Result<BindingTable> shard =
        evaluator.EvaluateShard(prepared, vars, s, shards);
    CARL_CHECK_OK(shard.status());
    for (Tuple& t : shard->ToTuples()) {
      if (seen.insert(t).second) merged.push_back(std::move(t));
    }
  }
  return merged;
}

TEST(BindingStreamTest, StreamingEqualsLegacyTuplePathOnAllWorkloads) {
  for (NamedDataset& wl : StreamWorkloads()) {
    Result<RelationalCausalModel> model = RelationalCausalModel::Parse(
        *wl.dataset.schema, wl.dataset.model_text);
    ASSERT_TRUE(model.ok()) << wl.name << ": " << model.status();
    QueryEvaluator evaluator(wl.dataset.instance.get());

    size_t conditions = 0;
    for (const CausalRule& rule : model->rules()) {
      std::vector<std::string> vars = rule.where.Variables();
      if (vars.empty()) continue;
      ++conditions;
      Result<PreparedQuery> prepared = evaluator.Prepare(rule.where);
      ASSERT_TRUE(prepared.ok()) << wl.name;
      Result<BindingTable> unsharded = evaluator.Evaluate(*prepared, vars);
      ASSERT_TRUE(unsharded.ok()) << wl.name;

      for (int threads : {1, 4}) {
        ScopedThreads scoped(threads);
        Result<size_t> candidates =
            evaluator.CountRootCandidates(*prepared);
        ASSERT_TRUE(candidates.ok());
        size_t shards = PlanBindingShards(*candidates, threads);

        // Legacy path: owned Tuples, unordered_set first-occurrence.
        std::vector<Tuple> legacy =
            LegacyTupleMerge(evaluator, *prepared, vars, shards);
        // Streamed path: columnar shard tables, InsertDistinct merge.
        BindingTable streamed(vars.size());
        for (size_t s = 0; s < shards; ++s) {
          Result<BindingTable> shard =
              evaluator.EvaluateShard(*prepared, vars, s, shards);
          ASSERT_TRUE(shard.ok());
          for (size_t r = 0; r < shard->size(); ++r) {
            streamed.InsertDistinct(shard->row(r));
          }
        }

        // Same bindings, same order — and both equal the unsharded
        // enumeration.
        EXPECT_EQ(streamed.ToTuples(), legacy)
            << wl.name << " threads=" << threads << " shards=" << shards;
        EXPECT_EQ(streamed.ToTuples(), unsharded->ToTuples())
            << wl.name << " threads=" << threads;
      }
    }
    EXPECT_GT(conditions, 0u) << wl.name << ": model has no rule to check";
  }
}

using test_fixtures::GraphFingerprint;

TEST(BindingStreamTest, GraphFingerprintIdenticalAcrossThreadCounts) {
  for (NamedDataset& wl : StreamWorkloads()) {
    Result<RelationalCausalModel> model = RelationalCausalModel::Parse(
        *wl.dataset.schema, wl.dataset.model_text);
    ASSERT_TRUE(model.ok()) << wl.name;

    uint64_t serial_fp = 0;
    {
      ScopedThreads scoped(1);
      Result<GroundedModel> serial = GroundModel(*wl.dataset.instance, *model);
      ASSERT_TRUE(serial.ok()) << wl.name << ": " << serial.status();
      serial_fp = GraphFingerprint(*serial);
    }
    for (int threads : {2, 4}) {
      ScopedThreads scoped(threads);
      Result<GroundedModel> parallel =
          GroundModel(*wl.dataset.instance, *model);
      ASSERT_TRUE(parallel.ok()) << wl.name;
      EXPECT_EQ(GraphFingerprint(*parallel), serial_fp)
          << wl.name << " differs at threads=" << threads;
    }
  }
}

TEST(BindingStreamTest, OverflowAttributeValueSurvivesGrounding) {
  // A value set before its fact exists lives in the overflow map; the
  // typed-column value pass must fall back to it instead of reading
  // "absent" off the dense column (regression guard for the column copy).
  Schema schema;
  CARL_CHECK_OK(schema.AddEntity("Person").status());
  CARL_CHECK_OK(
      schema.AddAttribute("Age", "Person", true, ValueType::kDouble).status());
  CARL_CHECK_OK(schema.AddAttribute("Risk", "Person", true,
                                    ValueType::kDouble).status());
  Instance db(&schema);
  CARL_CHECK_OK(db.AddFact("Person", {"bob"}));
  CARL_CHECK_OK(db.SetAttribute("Age", {"bob"}, Value(41.0)));
  // ghost's Age arrives before the ghost fact -> overflow entry.
  CARL_CHECK_OK(db.SetAttribute("Age", {"ghost"}, Value(7.0)));
  CARL_CHECK_OK(db.AddFact("Person", {"ghost"}));

  Result<RelationalCausalModel> model =
      RelationalCausalModel::Parse(schema, "Risk[P] <= Age[P]");
  ASSERT_TRUE(model.ok()) << model.status();
  for (int threads : {1, 4}) {
    ScopedThreads scoped(threads);
    Result<GroundedModel> grounded = GroundModel(db, *model);
    ASSERT_TRUE(grounded.ok()) << grounded.status();
    Result<AttributeId> age = schema.FindAttribute("Age");
    ASSERT_TRUE(age.ok());
    NodeId bob = grounded->graph().FindNode(
        *age, Tuple{db.LookupConstant("bob")});
    NodeId ghost = grounded->graph().FindNode(
        *age, Tuple{db.LookupConstant("ghost")});
    ASSERT_NE(bob, kInvalidNode);
    ASSERT_NE(ghost, kInvalidNode);
    EXPECT_EQ(grounded->NodeValue(bob), std::optional<double>(41.0));
    EXPECT_EQ(grounded->NodeValue(ghost), std::optional<double>(7.0))
        << "overflow-stored value lost by the typed-column pass";
  }
}

TEST(BindingStreamTest, InternedKeyInvalidationKeepsScopedSemantics) {
  // Regression for the key-interning refactor: BindingCache now compares
  // dense BindingKeyIds everywhere, and scoped invalidation must behave
  // exactly as the string-keyed cache did — drop only entries whose deps
  // intersect the delta, keep the rest pointer-identical, and keep serving
  // survivors under their original interned ids.
  BindingCache cache;
  auto make_table = [] {
    auto t = std::make_shared<BindingTable>(1);
    SymbolId v = 7;
    t->InsertDistinct(&v);
    return std::shared_ptr<const BindingTable>(std::move(t));
  };

  const BindingKeyId touched_key = cache.InternKey("rule:touched");
  const BindingKeyId disjoint_key = cache.InternKey("rule:disjoint");
  ASSERT_NE(touched_key, disjoint_key);
  // Re-interning the same string yields the same id — the one-hash-per-
  // rule-per-pass contract.
  EXPECT_EQ(cache.InternKey("rule:touched"), touched_key);

  auto touched_table = make_table();
  auto disjoint_table = make_table();
  cache.Insert(touched_key, touched_table, BindingDeps{{PredicateId{3}}, {}});
  cache.Insert(disjoint_key, disjoint_table,
               BindingDeps{{PredicateId{8}}, {AttributeId{2}}});
  ASSERT_EQ(cache.size(), 2u);

  // Complete delta touching predicate 3 only: the touched entry drops,
  // the disjoint entry survives with its table un-reallocated.
  InstanceDelta delta;
  delta.complete = true;
  delta.facts.push_back({PredicateId{3}, 0});
  cache.Invalidate(delta);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Find(touched_key), nullptr);
  EXPECT_EQ(cache.Find(disjoint_key).get(), disjoint_table.get())
      << "scoped invalidation dropped (or re-keyed) a disjoint entry";

  // The snapshot reports surviving (id, table) pairs — the hook the fuzz
  // suites use for pointer-identity across aborted passes.
  auto snapshot = cache.SnapshotEntries();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].first, disjoint_key);
  EXPECT_EQ(snapshot[0].second, disjoint_table.get());

  // An invalidated id stays stable and is reusable for the re-insert.
  EXPECT_EQ(cache.InternKey("rule:touched"), touched_key);
  cache.Insert(touched_key, make_table(), BindingDeps{{PredicateId{3}}, {}});
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.Find(touched_key), nullptr);

  // An attribute-intersecting delta scopes the same way.
  InstanceDelta attr_delta;
  attr_delta.complete = true;
  attr_delta.attributes.push_back({AttributeId{2}, {0}, false});
  cache.Invalidate(attr_delta);
  EXPECT_EQ(cache.Find(disjoint_key), nullptr);
  EXPECT_NE(cache.Find(touched_key), nullptr);

  // An incomplete delta still clears wholesale.
  InstanceDelta trimmed;
  trimmed.complete = false;
  cache.Invalidate(trimmed);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(BindingStreamTest, SessionReusesBindingTablesAcrossModelVariants) {
  Result<datagen::Dataset> data = datagen::MakeReviewToy();
  ASSERT_TRUE(data.ok());
  auto session = std::make_shared<QuerySession>(data->instance.get());

  auto answer = [&](const std::string& query) -> Result<double> {
    Result<RelationalCausalModel> model =
        RelationalCausalModel::Parse(*data->schema, data->model_text);
    CARL_RETURN_IF_ERROR(model.status());
    CARL_ASSIGN_OR_RETURN(
        std::unique_ptr<CarlEngine> engine,
        CarlEngine::Create(session, std::move(*model)));
    CARL_ASSIGN_OR_RETURN(QueryAnswer qa, engine->Answer(query));
    return qa.ate->ate.value;
  };

  // The first grounding fills the binding cache; the derived MAX_Score
  // variant re-grounds but shares every base rule condition, so its
  // enumeration comes from the cache.
  Result<double> derived = answer("MAX_Score[A] <= Prestige[A]?");
  ASSERT_TRUE(derived.ok()) << derived.status();
  EXPECT_EQ(session->stats().ground_misses, 2u);  // base + variant grounded
  EXPECT_GT(session->binding_cache().size(), 0u);
  EXPECT_GT(session->binding_cache().hits(), 0u)
      << "variant re-grounding re-enumerated shared rule conditions";

  // Cached-binding answers match a cache-free engine bit-for-bit.
  Result<RelationalCausalModel> fresh_model =
      RelationalCausalModel::Parse(*data->schema, data->model_text);
  ASSERT_TRUE(fresh_model.ok());
  Result<std::unique_ptr<CarlEngine>> isolated =
      CarlEngine::Create(data->instance.get(), std::move(*fresh_model));
  ASSERT_TRUE(isolated.ok());
  Result<QueryAnswer> isolated_answer =
      (*isolated)->Answer("MAX_Score[A] <= Prestige[A]?");
  ASSERT_TRUE(isolated_answer.ok());
  EXPECT_DOUBLE_EQ(*derived, isolated_answer->ate->ate.value);

  // Instance mutation drops the binding cache with the groundings.
  const auto entries = data->instance->AttributeEntries(
      *data->schema->FindAttribute("Score"));
  ASSERT_FALSE(entries.empty());
  ASSERT_TRUE(data->instance
                  ->SetAttributeIds(*data->schema->FindAttribute("Score"),
                                    entries.front().first, Value(99.0))
                  .ok());
  Result<double> after = answer("MAX_Score[A] <= Prestige[A]?");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(session->stats().ground_misses, 4u);  // re-grounded both variants
}

}  // namespace
}  // namespace carl
