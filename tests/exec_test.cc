// carl_exec determinism suite: chunk-plan invariants, ParallelFor /
// ParallelReduce semantics, RNG stream derivation, and — the load-bearing
// guarantee — that grounding, unit tables, and the bootstrap produce
// identical results for every thread count (grounding equivalence is
// checked as canonical-form graph equality on the review and MIMIC
// datasets). Also covers QuerySession caching: repeated groundings hit,
// derived-aggregation re-groundings are shared across engines, and value
// columns memoize.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "carl/carl.h"
#include "datagen/mimic.h"
#include "datagen/review_toy.h"
#include "exec/morsel.h"
#include "fixtures.h"

namespace carl {
namespace {

using test_fixtures::Canonicalize;
using test_fixtures::CanonicalGraph;
using test_fixtures::ScopedThreads;

// ---------------------------------------------------------------------------
// Chunk plan + primitives
// ---------------------------------------------------------------------------

TEST(ExecContextTest, ChunkPlanCoversRangeInOrder) {
  ExecContext ctx(4);
  for (size_t n : {0ul, 1ul, 7ul, 64ul, 65ul, 1000ul, 123457ul}) {
    std::vector<std::pair<size_t, size_t>> chunks = ctx.Chunks(n);
    ASSERT_EQ(chunks.size(), ctx.NumChunks(n));
    size_t expected_begin = 0;
    for (const auto& [begin, end] : chunks) {
      EXPECT_EQ(begin, expected_begin);
      EXPECT_LT(begin, end);
      expected_begin = end;
    }
    EXPECT_EQ(expected_begin, n);
  }
}

TEST(ExecContextTest, ChunkPlanIndependentOfThreadCount) {
  ExecContext serial(1), quad(4), wide(32);
  for (size_t n : {1ul, 100ul, 5000ul, 123457ul}) {
    EXPECT_EQ(serial.Chunks(n), quad.Chunks(n));
    EXPECT_EQ(serial.Chunks(n), wide.Chunks(n));
  }
}

TEST(ExecContextTest, RefreshFromEnvPicksUpLateCarlThreads) {
  // The global context samples CARL_THREADS once at first use; a test
  // that sets the variable afterwards was silently ignored until
  // RefreshFromEnv. Exercise the hook on the global instance and restore
  // everything on the way out.
  ExecContext& global = ExecContext::Global();
  int prev_threads = global.threads();
  const char* prev_env = std::getenv("CARL_THREADS");
  std::string prev_value = prev_env != nullptr ? prev_env : "";

  ::setenv("CARL_THREADS", "3", /*overwrite=*/1);
  EXPECT_EQ(global.threads(), prev_threads);  // env change alone: ignored
  global.RefreshFromEnv();
  EXPECT_EQ(global.threads(), 3);

  ::setenv("CARL_THREADS", "1", 1);
  global.RefreshFromEnv();
  EXPECT_EQ(global.threads(), 1);
  EXPECT_TRUE(global.serial());

  if (prev_env != nullptr) {
    ::setenv("CARL_THREADS", prev_value.c_str(), 1);
  } else {
    ::unsetenv("CARL_THREADS");
  }
  global.set_threads(prev_threads);
}

TEST(BindingShardPlanTest, NoShardSmallerThanTheFloor) {
  // PlanBindingShards must never cut a shard below kBindingShardMinRows,
  // return 1 whenever sharding is pointless, and cap tasks at 4x the
  // thread count. Sweep the boundary region exhaustively plus a few
  // large inputs.
  EXPECT_EQ(PlanBindingShards(0, 8), 1u);
  EXPECT_EQ(PlanBindingShards(kBindingShardMinRows - 1, 8), 1u);
  EXPECT_EQ(PlanBindingShards(kBindingShardMinRows, 8), 1u);
  EXPECT_EQ(PlanBindingShards(2 * kBindingShardMinRows - 1, 8), 1u);
  EXPECT_EQ(PlanBindingShards(1000000, 1), 1u);  // serial context

  for (int threads : {2, 4, 8, 32}) {
    for (size_t candidates :
         {kBindingShardMinRows * 2 - 1, kBindingShardMinRows * 2,
          kBindingShardMinRows * 2 + 1, kBindingShardMinRows * 3 - 1,
          kBindingShardMinRows * 7 + 13, size_t{100000}, size_t{1000003}}) {
      size_t shards = PlanBindingShards(candidates, threads);
      ASSERT_GE(shards, 1u);
      EXPECT_LE(shards, static_cast<size_t>(threads) * 4);
      if (shards > 1) {
        // Smallest shard of the balanced split [c*s/n, c*(s+1)/n).
        size_t min_shard = candidates;
        for (size_t s = 0; s < shards; ++s) {
          size_t begin = candidates * s / shards;
          size_t end = candidates * (s + 1) / shards;
          min_shard = std::min(min_shard, end - begin);
        }
        EXPECT_GE(min_shard, kBindingShardMinRows)
            << candidates << " candidates, " << threads << " threads";
      }
    }
  }
}

TEST(ExecContextTest, StreamSeedsAreStableAndDistinct) {
  uint64_t s0 = ExecContext::StreamSeed(42, 0);
  EXPECT_EQ(s0, ExecContext::StreamSeed(42, 0));
  std::vector<uint64_t> seeds;
  for (uint64_t i = 0; i < 100; ++i) {
    seeds.push_back(ExecContext::StreamSeed(42, i));
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::unique(seeds.begin(), seeds.end()), seeds.end());
  EXPECT_NE(ExecContext::StreamSeed(42, 1), ExecContext::StreamSeed(43, 1));
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  ExecContext ctx(4);
  const size_t n = 100000;
  std::vector<std::atomic<int>> visits(n);
  ParallelFor(ctx, n, [&](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) {
      visits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, ChunkIndexMatchesThePlan) {
  ExecContext ctx(4);
  const size_t n = 12345;
  std::vector<std::pair<size_t, size_t>> plan = ctx.Chunks(n);
  std::vector<std::pair<size_t, size_t>> observed(plan.size());
  ParallelFor(ctx, n, [&](size_t begin, size_t end, size_t chunk) {
    observed[chunk] = {begin, end};
  });
  EXPECT_EQ(observed, plan);
}

TEST(ParallelForTest, EmptyRangeRunsNothing) {
  ExecContext ctx(4);
  std::atomic<int> calls{0};
  ParallelFor(ctx, 0, [&](size_t, size_t, size_t) { calls++; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelReduceTest, FloatingPointSumBitIdenticalAcrossThreadCounts) {
  const size_t n = 54321;
  std::vector<double> data(n);
  for (size_t i = 0; i < n; ++i) data[i] = 0.1 * static_cast<double>(i + 1);
  auto sum_with = [&](int threads) {
    ExecContext ctx(threads);
    return ParallelReduce<double>(
        ctx, n, 0.0,
        [&](size_t begin, size_t end) {
          double s = 0.0;
          for (size_t i = begin; i < end; ++i) s += data[i];
          return s;
        },
        [](double a, double b) { return a + b; });
  };
  double serial = sum_with(1);
  EXPECT_EQ(serial, sum_with(2));  // exact: same chunk plan, same fold order
  EXPECT_EQ(serial, sum_with(4));
  EXPECT_EQ(serial, sum_with(16));
}

// ---------------------------------------------------------------------------
// Morsel scheduler: stealing
// ---------------------------------------------------------------------------

// Restores the global steal switch no matter how the test exits.
struct ScopedStealing {
  bool prev = exec::MorselStealingEnabled();
  explicit ScopedStealing(bool enabled) { exec::SetMorselStealing(enabled); }
  ~ScopedStealing() { exec::SetMorselStealing(prev); }
};

// Deterministic per-item work: a data-dependent spin whose result feeds
// the output slot, so the optimizer cannot elide it and timing jitter
// cannot change it.
uint64_t SpinWork(size_t i, uint64_t iters) {
  uint64_t h = 0x9e3779b97f4a7c15ull ^ i;
  for (uint64_t k = 0; k < iters; ++k) {
    h ^= h << 13;
    h ^= h >> 7;
    h ^= h << 17;
  }
  return h;
}

// Skewed morsel workload: the first quarter of the morsels carries ~50x
// the work of the rest — the shape the MimicConfig::prescription_skew
// datagen knob produces, reduced to the scheduler. Under the static
// partition the hot quarter serializes onto participant 0; with stealing
// the drained participants take it off the back.
std::vector<uint64_t> RunSkewedMorsels(ExecContext& ctx, bool stealing,
                                       uint64_t heavy_iters,
                                       double* seconds = nullptr) {
  constexpr size_t kMorsels = 256;
  std::vector<std::pair<size_t, size_t>> morsels;
  morsels.reserve(kMorsels);
  for (size_t m = 0; m < kMorsels; ++m) morsels.emplace_back(m, m + 1);
  std::vector<uint64_t> out(kMorsels);
  ScopedStealing scoped(stealing);
  auto t0 = std::chrono::steady_clock::now();
  exec::RunMorsels(ctx, std::move(morsels),
                   [&](size_t begin, size_t, size_t morsel) {
                     uint64_t iters =
                         begin < kMorsels / 4 ? heavy_iters : heavy_iters / 50;
                     out[morsel] = SpinWork(begin, iters);
                   });
  if (seconds != nullptr) {
    *seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0)
                   .count();
  }
  return out;
}

TEST(MorselSchedulerTest, StealingBeatsStaticPlanOnSkewedMorsels) {
  ExecContext ctx(4);
  const uint64_t heavy = 60000;

  // Correctness is unconditional: both schedules compute the same output
  // slots, and the skewed run under stealing must actually steal.
  uint64_t steals_before = exec::MorselStealCount();
  double steal_s = 1e9;
  std::vector<uint64_t> stolen = RunSkewedMorsels(ctx, true, heavy, &steal_s);
  EXPECT_GT(exec::MorselStealCount(), steals_before)
      << "a 4-thread run over a 50x-skewed morsel list never stole";
  double static_s = 1e9;
  std::vector<uint64_t> fixed = RunSkewedMorsels(ctx, false, heavy, &static_s);
  ASSERT_EQ(stolen, fixed)
      << "steal schedule changed WHAT was computed, not just where";

  // Wall-clock: only meaningful with real parallel hardware — on a
  // timeshared single core both schedules cost the same total work.
  if (std::thread::hardware_concurrency() < 4) {
    GTEST_SKIP() << "needs >=4 hardware threads for a wall-clock comparison";
  }
  // Best of 3 each to shave scheduler noise; the margin is generous (the
  // ideal speedup is ~3x — require only 1.25x) so CI machines don't flake.
  for (int rep = 0; rep < 2; ++rep) {
    double s = 1e9;
    RunSkewedMorsels(ctx, true, heavy, &s);
    steal_s = std::min(steal_s, s);
    RunSkewedMorsels(ctx, false, heavy, &s);
    static_s = std::min(static_s, s);
  }
  EXPECT_LT(steal_s * 1.25, static_s)
      << "morsel stealing did not beat the static plan on skewed work: "
      << steal_s << "s (stealing) vs " << static_s << "s (static)";
}

TEST(MorselSchedulerTest, ReduceBitIdenticalUnderRandomizedStealTiming) {
  // Delta-fuzz-style differential for the determinism contract: per-morsel
  // timing jitter (seeded, different every round) randomizes which thread
  // steals what, while the reduced value must stay bit-identical to the
  // serial fold. Runs TSan-clean — the jitter also widens the race window
  // the sanitizer watches.
  const size_t n = 300000;
  std::vector<double> data(n);
  for (size_t i = 0; i < n; ++i) data[i] = 0.1 * static_cast<double>(i + 1);
  auto sum_with = [&](int threads, uint64_t jitter_seed) {
    ExecContext ctx(threads);
    return ParallelReduce<double>(
        ctx, n, 0.0,
        [&](size_t begin, size_t end) {
          // Data-independent jitter: perturbs the steal schedule only.
          SpinWork(begin, (jitter_seed ^ begin) % 4096);
          double s = 0.0;
          for (size_t i = begin; i < end; ++i) s += data[i];
          return s;
        },
        [](double a, double b) { return a + b; });
  };
  const double serial = sum_with(1, 0);
  for (uint64_t round = 1; round <= 4; ++round) {
    for (int threads : {2, 4}) {
      EXPECT_EQ(serial, sum_with(threads, round * 0x2545f4914f6cdd1dull))
          << "threads=" << threads << " round=" << round;
    }
  }
}

// ---------------------------------------------------------------------------
// Grounding / unit-table equivalence
// ---------------------------------------------------------------------------

// Canonical-form graph equality and the shard-engaging MIMIC mini
// instance both live in tests/fixtures.{h,cc} now, shared with the
// graph-store and incremental-grounding suites.
Result<datagen::Dataset> SmallMimic() {
  return test_fixtures::MiniMimicDataset();
}

void ExpectGroundingEquivalence(const datagen::Dataset& data) {
  Result<RelationalCausalModel> model =
      RelationalCausalModel::Parse(*data.schema, data.model_text);
  ASSERT_TRUE(model.ok()) << model.status();

  Result<GroundedModel> serial = [&] {
    ScopedThreads scoped(1);
    return GroundModel(*data.instance, *model);
  }();
  ASSERT_TRUE(serial.ok()) << serial.status();
  CanonicalGraph serial_canon = Canonicalize(*serial);
  size_t serial_groundings = serial->num_groundings();

  for (int threads : {2, 4}) {
    ScopedThreads scoped(threads);
    Result<GroundedModel> parallel = GroundModel(*data.instance, *model);
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    EXPECT_EQ(parallel->graph().num_nodes(), serial->graph().num_nodes());
    EXPECT_EQ(parallel->graph().num_edges(), serial->graph().num_edges());
    EXPECT_EQ(parallel->num_groundings(), serial_groundings);
    EXPECT_TRUE(Canonicalize(*parallel) == serial_canon)
        << "grounded graph differs at threads=" << threads;
  }
}

TEST(GroundingEquivalenceTest, ReviewToy) {
  Result<datagen::Dataset> data = datagen::MakeReviewToy();
  ASSERT_TRUE(data.ok());
  ExpectGroundingEquivalence(*data);
}

TEST(GroundingEquivalenceTest, SimulatedMimic) {
  Result<datagen::Dataset> data = SmallMimic();
  ASSERT_TRUE(data.ok());
  ExpectGroundingEquivalence(*data);
}

TEST(GroundingEquivalenceTest, NodeIdsIdenticalNotJustIsomorphic) {
  // Stronger than the canonical check: the parallel merge preserves the
  // serial interning order, so even raw node ids match.
  Result<datagen::Dataset> data = SmallMimic();
  ASSERT_TRUE(data.ok());
  Result<RelationalCausalModel> model =
      RelationalCausalModel::Parse(*data->schema, data->model_text);
  ASSERT_TRUE(model.ok());

  Result<GroundedModel> serial = [&] {
    ScopedThreads scoped(1);
    return GroundModel(*data->instance, *model);
  }();
  ASSERT_TRUE(serial.ok());
  ScopedThreads scoped(4);
  Result<GroundedModel> parallel = GroundModel(*data->instance, *model);
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(parallel->graph().num_nodes(), serial->graph().num_nodes());
  for (NodeId id = 0; id < static_cast<NodeId>(serial->graph().num_nodes());
       ++id) {
    ASSERT_TRUE(serial->graph().node(id) == parallel->graph().node(id))
        << "node " << id;
    ASSERT_EQ(serial->graph().Parents(id), parallel->graph().Parents(id))
        << "parents of node " << id;
  }
}

TEST(UnitTableEquivalenceTest, MimicColumnsBitIdentical) {
  Result<datagen::Dataset> data = SmallMimic();
  ASSERT_TRUE(data.ok());
  Result<CausalQuery> query = ParseQuery("Death[P] <= SelfPay[P]?");
  ASSERT_TRUE(query.ok());

  auto build = [&]() -> Result<UnitTable> {
    Result<RelationalCausalModel> model =
        RelationalCausalModel::Parse(*data->schema, data->model_text);
    CARL_RETURN_IF_ERROR(model.status());
    CARL_ASSIGN_OR_RETURN(
        std::unique_ptr<CarlEngine> engine,
        CarlEngine::Create(data->instance.get(), std::move(*model)));
    return engine->BuildUnitTableForQuery(*query);
  };

  Result<UnitTable> serial = [&] {
    ScopedThreads scoped(1);
    return build();
  }();
  ASSERT_TRUE(serial.ok()) << serial.status();
  ScopedThreads scoped(4);
  Result<UnitTable> parallel = build();
  ASSERT_TRUE(parallel.ok()) << parallel.status();

  ASSERT_EQ(serial->data.column_names(), parallel->data.column_names());
  ASSERT_EQ(serial->data.num_rows(), parallel->data.num_rows());
  EXPECT_EQ(serial->dropped_units, parallel->dropped_units);
  EXPECT_EQ(serial->units, parallel->units);
  for (const std::string& col : serial->data.column_names()) {
    EXPECT_EQ(serial->data.Column(col), parallel->data.Column(col))
        << "column " << col;
  }
}

// ---------------------------------------------------------------------------
// Bootstrap determinism
// ---------------------------------------------------------------------------

TEST(BootstrapParallelTest, DeterministicAcrossParallelThreadCounts) {
  std::vector<double> data(500);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<double>(i % 17);
  }
  auto statistic = [&](const std::vector<size_t>& idx) -> Result<double> {
    double s = 0;
    for (size_t i : idx) s += data[i];
    return s / static_cast<double>(idx.size());
  };
  auto run = [&](int threads) {
    ScopedThreads scoped(threads);
    Result<BootstrapResult> b = Bootstrap(data.size(), 100, 7, statistic);
    EXPECT_TRUE(b.ok());
    return b->samples;
  };
  std::vector<double> two = run(2);
  EXPECT_EQ(two.size(), 100u);
  EXPECT_EQ(two, run(4));
  EXPECT_EQ(two, run(8));
}

// ---------------------------------------------------------------------------
// QuerySession cache
// ---------------------------------------------------------------------------

TEST(QuerySessionTest, RepeatedGroundingHitsTheCache) {
  Result<datagen::Dataset> data = datagen::MakeReviewToy();
  ASSERT_TRUE(data.ok());
  Result<RelationalCausalModel> model =
      RelationalCausalModel::Parse(*data->schema, data->model_text);
  ASSERT_TRUE(model.ok());

  QuerySession session(data->instance.get());
  Result<std::shared_ptr<const GroundedModel>> first = session.Ground(*model);
  ASSERT_TRUE(first.ok()) << first.status();
  Result<std::shared_ptr<const GroundedModel>> second =
      session.Ground(*model);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());  // same cached object
  EXPECT_EQ(session.stats().ground_misses, 1u);
  EXPECT_EQ(session.stats().ground_hits, 1u);
  EXPECT_EQ(session.num_cached_groundings(), 1u);
}

TEST(QuerySessionTest, DerivedAggregationRegroundSharedAcrossEngines) {
  Result<datagen::Dataset> data = datagen::MakeReviewToy();
  ASSERT_TRUE(data.ok());
  auto session = std::make_shared<QuerySession>(data->instance.get());

  auto answer_with_fresh_engine = [&]() -> Status {
    Result<RelationalCausalModel> model =
        RelationalCausalModel::Parse(*data->schema, data->model_text);
    CARL_RETURN_IF_ERROR(model.status());
    CARL_ASSIGN_OR_RETURN(
        std::unique_ptr<CarlEngine> engine,
        CarlEngine::Create(session, std::move(*model)));
    // MAX_Score is not in the model: the engine derives the unifying
    // aggregate (§4.3) and re-grounds the extended variant.
    return engine->Answer("MAX_Score[A] <= Prestige[A]?").status();
  };

  ASSERT_TRUE(answer_with_fresh_engine().ok());
  EXPECT_EQ(session->stats().ground_misses, 2u);  // base + MAX_Score variant
  size_t misses_after_first = session->stats().ground_misses;

  // A second engine repeats the pipeline: base grounding and the derived
  // variant both come from the cache — zero new groundings.
  ASSERT_TRUE(answer_with_fresh_engine().ok());
  EXPECT_EQ(session->stats().ground_misses, misses_after_first);
  EXPECT_GE(session->stats().ground_hits, 2u);
}

TEST(QuerySessionTest, ValueColumnsMemoizeAndMatchNodeValues) {
  Result<datagen::Dataset> data = datagen::MakeReviewToy();
  ASSERT_TRUE(data.ok());
  Result<RelationalCausalModel> model =
      RelationalCausalModel::Parse(*data->schema, data->model_text);
  ASSERT_TRUE(model.ok());

  QuerySession session(data->instance.get());
  Result<std::shared_ptr<const GroundedModel>> grounded =
      session.Ground(*model);
  ASSERT_TRUE(grounded.ok());
  Result<AttributeId> score =
      model->extended_schema().FindAttribute("Score");
  ASSERT_TRUE(score.ok());

  Result<std::shared_ptr<const AttributeValueColumn>> col =
      session.ValueColumn(*grounded, *score);
  ASSERT_TRUE(col.ok()) << col.status();
  EXPECT_EQ((*col)->nodes.size(), (*col)->values.size());
  EXPECT_FALSE((*col)->nodes.empty());
  for (size_t i = 0; i < (*col)->nodes.size(); ++i) {
    EXPECT_EQ((*col)->values[i], (*grounded)->NodeValue((*col)->nodes[i]));
  }

  Result<std::shared_ptr<const AttributeValueColumn>> again =
      session.ValueColumn(*grounded, *score);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(col->get(), again->get());  // memoized
  EXPECT_EQ(session.stats().column_misses, 1u);
  EXPECT_EQ(session.stats().column_hits, 1u);

  // Unknown groundings and attributes are rejected, not miscached.
  EXPECT_FALSE(session.ValueColumn(nullptr, *score).ok());
  EXPECT_FALSE(session.ValueColumn(*grounded, kInvalidAttribute).ok());
}

TEST(QuerySessionTest, EvictionBoundsTheCache) {
  Result<datagen::Dataset> data = datagen::MakeReviewToy();
  ASSERT_TRUE(data.ok());
  auto session = std::make_shared<QuerySession>(data->instance.get());
  session->set_max_cached_groundings(1);

  Result<RelationalCausalModel> model =
      RelationalCausalModel::Parse(*data->schema, data->model_text);
  ASSERT_TRUE(model.ok());
  Result<std::unique_ptr<CarlEngine>> engine =
      CarlEngine::Create(session, std::move(*model));
  ASSERT_TRUE(engine.ok());
  // The derived MAX_Score variant is a second grounding: with capacity 1
  // the base grounding is evicted, the engine keeps its shared_ptr alive.
  ASSERT_TRUE((*engine)->Answer("MAX_Score[A] <= Prestige[A]?").ok());
  EXPECT_EQ(session->num_cached_groundings(), 1u);
  EXPECT_GE(session->stats().ground_evictions, 1u);
}

TEST(QuerySessionTest, EngineSurvivesEvictionOfItsGrounding) {
  Result<datagen::Dataset> data = datagen::MakeReviewToy();
  ASSERT_TRUE(data.ok());
  auto session = std::make_shared<QuerySession>(data->instance.get());
  session->set_max_cached_groundings(1);

  auto make_engine = [&]() -> std::unique_ptr<CarlEngine> {
    Result<RelationalCausalModel> model =
        RelationalCausalModel::Parse(*data->schema, data->model_text);
    CARL_CHECK_OK(model.status());
    Result<std::unique_ptr<CarlEngine>> engine =
        CarlEngine::Create(session, std::move(*model));
    CARL_CHECK_OK(engine.status());
    return std::move(*engine);
  };

  std::unique_ptr<CarlEngine> holder_engine = make_engine();
  Result<QueryAnswer> before =
      holder_engine->Answer("AVG_Score[A] <= Prestige[A]?");
  ASSERT_TRUE(before.ok());

  // A second engine grounds a derived variant, evicting the first
  // engine's grounding from the cache. The first engine's aliased
  // shared_ptr must keep grounding AND model copy alive (the grounding
  // references the model by pointer), so it keeps answering correctly.
  std::unique_ptr<CarlEngine> evictor = make_engine();
  ASSERT_TRUE(evictor->Answer("MAX_Score[A] <= Prestige[A]?").ok());
  EXPECT_GE(session->stats().ground_evictions, 1u);

  Result<QueryAnswer> after =
      holder_engine->Answer("AVG_Score[A] <= Prestige[A]?");
  ASSERT_TRUE(after.ok());
  EXPECT_DOUBLE_EQ(after->ate->ate.value, before->ate->ate.value);
}

TEST(QuerySessionTest, ValueMutationInvalidatesCachedGroundings) {
  Result<datagen::Dataset> data = datagen::MakeReviewToy();
  ASSERT_TRUE(data.ok());
  Result<RelationalCausalModel> model =
      RelationalCausalModel::Parse(*data->schema, data->model_text);
  ASSERT_TRUE(model.ok());

  QuerySession session(data->instance.get());
  Result<std::shared_ptr<const GroundedModel>> before =
      session.Ground(*model);
  ASSERT_TRUE(before.ok());

  // Overwrite one existing Score value in place: no cardinality changes,
  // but the value fold in the fingerprint must still notice.
  Result<AttributeId> score =
      model->extended_schema().FindAttribute("Score");
  ASSERT_TRUE(score.ok());
  const auto score_entries = data->instance->AttributeEntries(*score);
  ASSERT_FALSE(score_entries.empty());
  Tuple target = score_entries.front().first;
  ASSERT_TRUE(
      data->instance->SetAttributeIds(*score, target, Value(123.5)).ok());

  Result<std::shared_ptr<const GroundedModel>> after = session.Ground(*model);
  ASSERT_TRUE(after.ok());
  EXPECT_NE(before->get(), after->get());  // re-grounded, not served stale
  EXPECT_EQ(session.stats().ground_misses, 2u);
  NodeId changed = after->get()->graph().FindNode(*score, target);
  ASSERT_NE(changed, kInvalidNode);
  EXPECT_EQ(after->get()->NodeValue(changed), std::optional<double>(123.5));
}

TEST(QuerySessionTest, EngineAnswersIdenticalThroughSharedSession) {
  Result<datagen::Dataset> data = datagen::MakeReviewToy();
  ASSERT_TRUE(data.ok());
  auto session = std::make_shared<QuerySession>(data->instance.get());

  auto answer = [&](bool shared) -> Result<double> {
    Result<RelationalCausalModel> model =
        RelationalCausalModel::Parse(*data->schema, data->model_text);
    CARL_RETURN_IF_ERROR(model.status());
    Result<std::unique_ptr<CarlEngine>> engine =
        shared ? CarlEngine::Create(session, std::move(*model))
               : CarlEngine::Create(data->instance.get(), std::move(*model));
    CARL_RETURN_IF_ERROR(engine.status());
    CARL_ASSIGN_OR_RETURN(QueryAnswer qa,
                          (*engine)->Answer("AVG_Score[A] <= Prestige[A]?"));
    return qa.ate->ate.value;
  };

  Result<double> isolated = answer(false);
  Result<double> cached_once = answer(true);
  Result<double> cached_twice = answer(true);
  ASSERT_TRUE(isolated.ok() && cached_once.ok() && cached_twice.ok());
  EXPECT_DOUBLE_EQ(*isolated, *cached_once);
  EXPECT_DOUBLE_EQ(*cached_once, *cached_twice);
}

}  // namespace
}  // namespace carl
