// Cross-module consistency: every generator's schema must round-trip
// through the schema declaration format, and every generator's model text
// must validate against its own schema (guards against the two formats
// drifting apart).

#include <gtest/gtest.h>

#include "core/causal_model.h"
#include "datagen/mimic.h"
#include "datagen/nis.h"
#include "datagen/review.h"
#include "datagen/review_toy.h"
#include "relational/schema_parser.h"

namespace carl {
namespace {

void CheckRoundTrip(const Schema& schema, const std::string& model_text) {
  // Schema -> text -> Schema preserves structure.
  std::string formatted = FormatSchema(schema);
  Result<Schema> reparsed = ParseSchema(formatted);
  ASSERT_TRUE(reparsed.ok()) << formatted;
  EXPECT_EQ(reparsed->num_predicates(), schema.num_predicates());
  EXPECT_EQ(reparsed->num_attributes(), schema.num_attributes());
  for (const AttributeDef& attr : schema.attributes()) {
    Result<AttributeId> found = reparsed->FindAttribute(attr.name);
    ASSERT_TRUE(found.ok()) << attr.name;
    const AttributeDef& again = reparsed->attribute(*found);
    EXPECT_EQ(again.observed, attr.observed) << attr.name;
    EXPECT_EQ(again.type, attr.type) << attr.name;
    EXPECT_EQ(reparsed->predicate(again.predicate).name,
              schema.predicate(attr.predicate).name)
        << attr.name;
  }
  // The dataset's model also validates against the REPARSED schema.
  EXPECT_TRUE(RelationalCausalModel::Parse(*reparsed, model_text).ok());
}

TEST(SchemaRoundTripTest, ReviewToy) {
  Result<datagen::Dataset> data = datagen::MakeReviewToy();
  ASSERT_TRUE(data.ok());
  CheckRoundTrip(*data->schema, data->model_text);
}

TEST(SchemaRoundTripTest, SyntheticReview) {
  datagen::ReviewConfig config;
  config.num_authors = 50;
  config.num_papers = 100;
  config.num_venues = 2;
  config.num_institutions = 5;
  Result<datagen::ReviewData> data = datagen::GenerateReviewData(config);
  ASSERT_TRUE(data.ok());
  CheckRoundTrip(*data->dataset.schema, data->dataset.model_text);
}

TEST(SchemaRoundTripTest, Mimic) {
  datagen::MimicConfig config;
  config.num_patients = 50;
  config.num_caregivers = 5;
  Result<datagen::Dataset> data = datagen::GenerateMimic(config);
  ASSERT_TRUE(data.ok());
  CheckRoundTrip(*data->schema, data->model_text);
}

TEST(SchemaRoundTripTest, Nis) {
  datagen::NisConfig config;
  config.num_hospitals = 10;
  config.num_admissions = 50;
  Result<datagen::Dataset> data = datagen::GenerateNis(config);
  ASSERT_TRUE(data.ok());
  CheckRoundTrip(*data->schema, data->model_text);
}

}  // namespace
}  // namespace carl
