// Property-based tests:
//  * DSeparated agrees with a brute-force path-blocking oracle on random
//    DAGs over thousands of (X, Y | Z) triples;
//  * the conjunctive-query evaluator agrees with naive enumeration on
//    random instances;
//  * the full pipeline recovers generative effects for every
//    (embedding x estimator) combination on confounded relational data.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "common/rng.h"
#include "core/engine.h"
#include "datagen/review.h"
#include "graph/causal_graph.h"
#include "relational/evaluator.h"

namespace carl {
namespace {

// ---------------------------------------------------------------------------
// d-separation oracle: enumerate all undirected paths between x and y and
// test the classic blocking rules (Pearl): a path is blocked by Z iff it
// contains a chain/fork node in Z, or a collider whose descendants
// (including itself) are all outside Z.
class DSepOracle {
 public:
  explicit DSepOracle(const CausalGraph& graph) : graph_(graph) {}

  bool Separated(NodeId x, NodeId y, const std::vector<NodeId>& z) {
    std::vector<bool> in_z(graph_.num_nodes(), false);
    for (NodeId n : z) in_z[n] = true;
    if (in_z[x] || in_z[y]) return true;

    // A collider is open iff it (or a descendant) is in Z — equivalently,
    // iff it is an ancestor of Z.
    std::vector<bool> anc_z(graph_.num_nodes(), false);
    for (NodeId n : graph_.Ancestors(z)) anc_z[n] = true;

    // DFS over simple undirected paths. `arrived_into_cur` records whether
    // the edge used to reach `cur` points into it (prev -> cur).
    std::vector<bool> on_path(graph_.num_nodes(), false);
    bool active_found = false;
    std::function<void(NodeId, bool)> dfs = [&](NodeId cur,
                                                bool arrived_into_cur) {
      if (active_found) return;
      if (cur == y) {
        active_found = true;
        return;
      }
      on_path[cur] = true;
      auto try_next = [&](NodeId next, bool leaves_via_child) {
        if (on_path[next] || active_found) return;
        // cur is a collider on the path iff both edges point into it:
        // we arrived along an inbound edge AND leave against an inbound
        // edge (toward a parent).
        bool collider = arrived_into_cur && !leaves_via_child;
        bool open = collider ? anc_z[cur] : !in_z[cur];
        // Leaving toward a child means the next node is entered along an
        // inbound edge.
        if (open) dfs(next, leaves_via_child);
      };
      for (NodeId child : graph_.Children(cur)) try_next(child, true);
      for (NodeId parent : graph_.Parents(cur)) try_next(parent, false);
      on_path[cur] = false;
    };
    on_path[x] = true;
    for (NodeId child : graph_.Children(x)) {
      if (!active_found) dfs(child, true);
    }
    for (NodeId parent : graph_.Parents(x)) {
      if (!active_found) dfs(parent, false);
    }
    return !active_found;
  }

 private:
  const CausalGraph& graph_;
};

CausalGraph RandomDag(size_t num_nodes, double edge_prob, Rng* rng) {
  CausalGraph graph;
  for (size_t i = 0; i < num_nodes; ++i) {
    graph.AddNode(0, {static_cast<SymbolId>(i)});
  }
  // Edges only from lower to higher index: acyclic by construction.
  for (size_t i = 0; i < num_nodes; ++i) {
    for (size_t j = i + 1; j < num_nodes; ++j) {
      if (rng->Bernoulli(edge_prob)) {
        graph.AddEdge(static_cast<NodeId>(i), static_cast<NodeId>(j));
      }
    }
  }
  return graph;
}

TEST(DSeparationPropertyTest, AgreesWithPathEnumerationOracle) {
  Rng rng(2024);
  int checked = 0;
  for (int g = 0; g < 40; ++g) {
    size_t n = static_cast<size_t>(rng.UniformInt(3, 8));
    CausalGraph graph = RandomDag(n, 0.35, &rng);
    DSepOracle oracle(graph);
    for (int trial = 0; trial < 40; ++trial) {
      NodeId x = static_cast<NodeId>(rng.UniformInt(0, n - 1));
      NodeId y = static_cast<NodeId>(rng.UniformInt(0, n - 1));
      if (x == y) continue;
      std::vector<NodeId> z;
      for (size_t c = 0; c < n; ++c) {
        if (static_cast<NodeId>(c) != x && static_cast<NodeId>(c) != y &&
            rng.Bernoulli(0.3)) {
          z.push_back(static_cast<NodeId>(c));
        }
      }
      bool fast = DSeparated(graph, {x}, {y}, z);
      bool slow = oracle.Separated(x, y, z);
      ASSERT_EQ(fast, slow)
          << "graph " << g << " x=" << x << " y=" << y << " |Z|=" << z.size();
      ++checked;
    }
  }
  EXPECT_GT(checked, 1000);
}

// ---------------------------------------------------------------------------
// Conjunctive-query evaluator vs naive enumeration.
TEST(EvaluatorPropertyTest, AgreesWithNaiveEnumeration) {
  Rng rng(99);
  for (int trial = 0; trial < 25; ++trial) {
    Schema schema;
    CARL_CHECK_OK(schema.AddEntity("E").status());
    CARL_CHECK_OK(schema.AddRelationship("R", {"E", "E"}).status());
    CARL_CHECK_OK(schema.AddRelationship("Q", {"E", "E"}).status());
    Instance db(&schema);

    size_t num_constants = static_cast<size_t>(rng.UniformInt(3, 6));
    std::vector<std::string> names;
    for (size_t i = 0; i < num_constants; ++i) {
      names.push_back("c" + std::to_string(i));
      CARL_CHECK_OK(db.AddFact("E", {names.back()}));
    }
    for (const char* pred : {"R", "Q"}) {
      for (const std::string& a : names) {
        for (const std::string& b : names) {
          if (rng.Bernoulli(0.3)) CARL_CHECK_OK(db.AddFact(pred, {a, b}));
        }
      }
    }

    // Query: R(X, Y), Q(Y, Z) with outputs {X, Z}.
    ConjunctiveQuery query;
    query.atoms.push_back({"R", {Term::Var("X"), Term::Var("Y")}});
    query.atoms.push_back({"Q", {Term::Var("Y"), Term::Var("Z")}});
    QueryEvaluator evaluator(&db);
    Result<BindingTable> fast = evaluator.Evaluate(query, {"X", "Z"});
    ASSERT_TRUE(fast.ok());

    // Brute force over all (x, y, z) constant triples.
    std::set<std::pair<SymbolId, SymbolId>> slow;
    PredicateId r = *schema.FindPredicate("R");
    PredicateId q = *schema.FindPredicate("Q");
    auto has = [&db](PredicateId p, SymbolId a, SymbolId b) {
      for (TupleView row : db.Rows(p)) {
        if (row[0] == a && row[1] == b) return true;
      }
      return false;
    };
    for (const std::string& xs : names) {
      for (const std::string& ys : names) {
        for (const std::string& zs : names) {
          SymbolId x = db.LookupConstant(xs), y = db.LookupConstant(ys),
                   z = db.LookupConstant(zs);
          if (has(r, x, y) && has(q, y, z)) slow.insert({x, z});
        }
      }
    }
    std::set<std::pair<SymbolId, SymbolId>> fast_set;
    for (size_t r = 0; r < fast->size(); ++r) {
      fast_set.insert({fast->row(r)[0], fast->row(r)[1]});
    }
    ASSERT_EQ(fast_set, slow) << "trial " << trial;
  }
}

// ---------------------------------------------------------------------------
// End-to-end recovery sweep: every embedding recovers the isolated effect
// on confounded relational data (single-blind synthetic review).
struct SweepCase {
  EmbeddingKind embedding;
  uint64_t seed;
};

class RecoverySweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(RecoverySweepTest, IsolatedEffectWithinTolerance) {
  datagen::ReviewConfig config;
  config.num_authors = 500;
  config.num_institutions = 25;
  config.num_papers = 3000;
  config.num_venues = 5;
  config.single_blind_fraction = 1.0;
  config.tau_iso_single = 1.0;
  config.tau_rel = 0.5;
  config.seed = GetParam().seed;
  Result<datagen::ReviewData> data = datagen::GenerateReviewData(config);
  CARL_CHECK_OK(data.status());
  Result<RelationalCausalModel> model = RelationalCausalModel::Parse(
      *data->dataset.schema, data->dataset.model_text);
  CARL_CHECK_OK(model.status());
  Result<std::unique_ptr<CarlEngine>> engine =
      CarlEngine::Create(data->dataset.instance.get(), std::move(*model));
  CARL_CHECK_OK(engine.status());

  EngineOptions options;
  options.embedding = GetParam().embedding;
  Result<QueryAnswer> answer = (*engine)->Answer(
      "AVG_Score[A] <= Prestige[A]? WHEN MORE THAN 1/3 PEERS TREATED",
      options);
  ASSERT_TRUE(answer.ok());
  EXPECT_NEAR(answer->effects->aie.value, 1.0, 0.25)
      << EmbeddingKindToString(GetParam().embedding);
  EXPECT_NEAR(answer->effects->are.value, 0.5, 0.3);
}

INSTANTIATE_TEST_SUITE_P(
    Embeddings, RecoverySweepTest,
    ::testing::Values(SweepCase{EmbeddingKind::kMean, 51},
                      SweepCase{EmbeddingKind::kMedian, 52},
                      SweepCase{EmbeddingKind::kMoments, 53},
                      SweepCase{EmbeddingKind::kPadding, 54}),
    [](const auto& info) {
      return EmbeddingKindToString(info.param.embedding);
    });

}  // namespace
}  // namespace carl
