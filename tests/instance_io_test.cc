// Tests for CSV instance import/export.

#include <gtest/gtest.h>

#include "relational/instance_io.h"

namespace carl {
namespace {

Schema MakeSchema() {
  Schema schema;
  CARL_CHECK_OK(schema.AddEntity("Person").status());
  CARL_CHECK_OK(schema.AddEntity("Paper").status());
  CARL_CHECK_OK(
      schema.AddRelationship("Wrote", {"Person", "Paper"}).status());
  CARL_CHECK_OK(schema.AddAttribute("Age", "Person").status());
  CARL_CHECK_OK(
      schema.AddAttribute("Tenured", "Person", true, ValueType::kBool)
          .status());
  CARL_CHECK_OK(schema.AddAttribute("Venue", "Paper", true,
                                    ValueType::kString)
                    .status());
  return schema;
}

TEST(ParseCsvValueTest, TypeInference) {
  EXPECT_TRUE(ParseCsvValue("").is_null());
  EXPECT_TRUE(ParseCsvValue("  ").is_null());
  EXPECT_EQ(ParseCsvValue("true"), Value(true));
  EXPECT_EQ(ParseCsvValue("FALSE"), Value(false));
  EXPECT_EQ(ParseCsvValue("42"), Value(int64_t{42}));
  EXPECT_EQ(ParseCsvValue("-3"), Value(int64_t{-3}));
  EXPECT_EQ(ParseCsvValue("2.5"), Value(2.5));
  EXPECT_EQ(ParseCsvValue("1e3"), Value(1000.0));
  EXPECT_EQ(ParseCsvValue("Bob"), Value("Bob"));
  EXPECT_EQ(ParseCsvValue("12abc"), Value("12abc"));
}

TEST(InstanceIoTest, LoadFactsRoundTrip) {
  Schema schema = MakeSchema();
  Instance db(&schema);
  Result<CsvDocument> facts = ParseCsv("person,paper\nBob,p1\nEva,p1\nEva,p2\n");
  ASSERT_TRUE(facts.ok());
  ASSERT_TRUE(LoadFactsCsv(*facts, "Wrote", &db).ok());
  EXPECT_EQ(db.NumRows(*schema.FindPredicate("Wrote")), 3u);

  Result<CsvDocument> dumped = DumpFactsCsv(db, "Wrote");
  ASSERT_TRUE(dumped.ok());
  EXPECT_EQ(dumped->rows.size(), 3u);
  EXPECT_EQ(dumped->rows[0], (std::vector<std::string>{"Bob", "p1"}));
}

TEST(InstanceIoTest, LoadFactsRejectsArityMismatch) {
  Schema schema = MakeSchema();
  Instance db(&schema);
  Result<CsvDocument> facts = ParseCsv("a\nBob\n");
  ASSERT_TRUE(facts.ok());
  EXPECT_FALSE(LoadFactsCsv(*facts, "Wrote", &db).ok());
  EXPECT_FALSE(LoadFactsCsv(*facts, "Ghost", &db).ok());
  EXPECT_FALSE(LoadFactsCsv(*facts, "Person", nullptr).ok());
}

TEST(InstanceIoTest, LoadAttributesWithMissingCells) {
  Schema schema = MakeSchema();
  Instance db(&schema);
  CARL_CHECK_OK(db.AddFact("Person", {"Bob"}));
  CARL_CHECK_OK(db.AddFact("Person", {"Eva"}));
  Result<CsvDocument> attrs =
      ParseCsv("person,Age,Tenured\nBob,41,true\nEva,,false\n");
  ASSERT_TRUE(attrs.ok());
  ASSERT_TRUE(LoadAttributesCsv(*attrs, /*key_width=*/1, &db).ok());

  AttributeId age = *schema.FindAttribute("Age");
  AttributeId tenured = *schema.FindAttribute("Tenured");
  Tuple bob{db.LookupConstant("Bob")}, eva{db.LookupConstant("Eva")};
  EXPECT_DOUBLE_EQ(db.GetAttribute(age, bob)->AsDouble(), 41.0);
  EXPECT_FALSE(db.GetAttribute(age, eva).has_value());  // empty cell
  EXPECT_EQ(db.GetAttribute(tenured, eva), Value(false));
}

TEST(InstanceIoTest, LoadAttributesValidation) {
  Schema schema = MakeSchema();
  Instance db(&schema);
  Result<CsvDocument> attrs = ParseCsv("p,Age\nBob,1\n");
  ASSERT_TRUE(attrs.ok());
  // key_width out of range.
  EXPECT_FALSE(LoadAttributesCsv(*attrs, 0, &db).ok());
  EXPECT_FALSE(LoadAttributesCsv(*attrs, 2, &db).ok());
  // Unknown attribute column.
  Result<CsvDocument> bad = ParseCsv("p,Nope\nBob,1\n");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(LoadAttributesCsv(*bad, 1, &db).ok());
  // Attribute of a different arity (relationship attr would need 2 keys).
  Result<CsvDocument> venue = ParseCsv("p,Venue,Age\np1,VLDB,3\n");
  ASSERT_TRUE(venue.ok());
  // Venue is on Paper (arity 1) and Age on Person (arity 1): both accept
  // one key column; but a two-key file for them fails.
  Result<CsvDocument> twokey = ParseCsv("a,b,Age\nx,y,3\n");
  ASSERT_TRUE(twokey.ok());
  EXPECT_FALSE(LoadAttributesCsv(*twokey, 2, &db).ok());
}

TEST(InstanceIoTest, StringAttributesSupported) {
  Schema schema = MakeSchema();
  Instance db(&schema);
  CARL_CHECK_OK(db.AddFact("Paper", {"p1"}));
  Result<CsvDocument> attrs = ParseCsv("paper,Venue\np1,SIGMOD\n");
  ASSERT_TRUE(attrs.ok());
  ASSERT_TRUE(LoadAttributesCsv(*attrs, 1, &db).ok());
  AttributeId venue = *schema.FindAttribute("Venue");
  Tuple p1{db.LookupConstant("p1")};
  EXPECT_EQ(db.GetAttribute(venue, p1), Value("SIGMOD"));
}

}  // namespace
}  // namespace carl
