// Unit tests for src/lang: lexer, parser, AST printing — the CaRL syntax
// of paper §3.2–3.3.

#include <gtest/gtest.h>

#include "lang/ast.h"
#include "lang/lexer.h"
#include "lang/parser.h"

namespace carl {
namespace {

TEST(LexerTest, BasicTokens) {
  Result<std::vector<Token>> tokens =
      Tokenize("Score[S] <= Prestige[A]? // comment\n# another");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const Token& t : *tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds, (std::vector<TokenKind>{
                       TokenKind::kIdent, TokenKind::kLBracket,
                       TokenKind::kIdent, TokenKind::kRBracket,
                       TokenKind::kArrow, TokenKind::kIdent,
                       TokenKind::kLBracket, TokenKind::kIdent,
                       TokenKind::kRBracket, TokenKind::kQuestion,
                       TokenKind::kEnd}));
}

TEST(LexerTest, StringsAndNumbers) {
  Result<std::vector<Token>> tokens = Tokenize(R"("Bob" 1.5 42 33% 1/3)");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[0].text, "Bob");
  EXPECT_DOUBLE_EQ((*tokens)[1].number, 1.5);
  EXPECT_DOUBLE_EQ((*tokens)[2].number, 42.0);
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kPercent);
  EXPECT_EQ((*tokens)[6].kind, TokenKind::kSlash);
}

TEST(LexerTest, ArrowVariants) {
  for (const char* text : {"A[X] <= B[Y]", "A[X] <- B[Y]"}) {
    Result<std::vector<Token>> tokens = Tokenize(text);
    ASSERT_TRUE(tokens.ok());
    EXPECT_EQ((*tokens)[4].kind, TokenKind::kArrow) << text;
  }
}

TEST(LexerTest, ComparisonOperators) {
  Result<std::vector<Token>> tokens = Tokenize("= != < > >= ==");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kEq);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kNe);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kLt);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kGt);
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kGe);
  EXPECT_EQ((*tokens)[5].kind, TokenKind::kEq);
}

TEST(LexerTest, ErrorsCarryLocation) {
  Result<std::vector<Token>> bad = Tokenize("A[X] $ B");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 1"), std::string::npos);
  EXPECT_FALSE(Tokenize("\"unterminated").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());
}

TEST(ParserTest, CausalRule) {
  Result<CausalRule> rule = ParseRule(
      "Score[S] <= Quality[S], Prestige[A] WHERE Author(A, S)");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->head.attribute, "Score");
  ASSERT_EQ(rule->body.size(), 2u);
  EXPECT_EQ(rule->body[1].attribute, "Prestige");
  ASSERT_EQ(rule->where.atoms.size(), 1u);
  EXPECT_EQ(rule->where.atoms[0].predicate, "Author");
}

TEST(ParserTest, RuleWithoutWhere) {
  Result<CausalRule> rule = ParseRule("Bill[P] <= Severity[P]");
  ASSERT_TRUE(rule.ok());
  EXPECT_TRUE(rule->where.empty());
}

TEST(ParserTest, AggregateRuleByPrefix) {
  Result<AggregateRule> rule =
      ParseAggregateRule("AVG_Score[A] <= Score[S] WHERE Author(A, S)");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->aggregate, AggregateKind::kAvg);
  EXPECT_EQ(rule->head.attribute, "AVG_Score");
  EXPECT_EQ(rule->source.attribute, "Score");
}

TEST(ParserTest, AggregatePrefixes) {
  for (const auto& [text, kind] :
       std::initializer_list<std::pair<const char*, AggregateKind>>{
           {"MEDIAN_X[A] <= X[B] WHERE R(A, B)", AggregateKind::kMedian},
           {"COUNT_X[A] <= X[B] WHERE R(A, B)", AggregateKind::kCount},
           {"VAR_X[A] <= X[B] WHERE R(A, B)", AggregateKind::kVariance}}) {
    Result<AggregateRule> rule = ParseAggregateRule(text);
    ASSERT_TRUE(rule.ok()) << text;
    EXPECT_EQ(rule->aggregate, kind);
  }
}

TEST(ParserTest, AteQuery) {
  Result<CausalQuery> q = ParseQuery("Score[S] <= Prestige[A]?");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->response.attribute, "Score");
  EXPECT_EQ(q->treatment.attribute, "Prestige");
  EXPECT_FALSE(q->peer_condition.has_value());
  EXPECT_TRUE(q->where.empty());
}

TEST(ParserTest, QueryWithWhereFilter) {
  Result<CausalQuery> q = ParseQuery(
      R"(AVG_Score[A] <= Prestige[A]? WHERE Submitted(S, C), Blind[C] = TRUE)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where.atoms.size(), 1u);
  ASSERT_EQ(q->where.constraints.size(), 1u);
  EXPECT_EQ(q->where.constraints[0].rhs, Value(true));
}

TEST(ParserTest, PeerConditions) {
  struct Case {
    const char* text;
    PeerCondition::Kind kind;
    double value;
  };
  for (const Case& c : std::initializer_list<Case>{
           {"Y[S] <= T[A]? WHEN ALL PEERS TREATED",
            PeerCondition::Kind::kAll, 0.0},
           {"Y[S] <= T[A]? WHEN NONE PEERS TREATED",
            PeerCondition::Kind::kNone, 0.0},
           {"Y[S] <= T[A]? WHEN MORE THAN 1/3 PEERS TREATED",
            PeerCondition::Kind::kMoreThanFrac, 1.0 / 3.0},
           {"Y[S] <= T[A]? WHEN LESS THAN 25% PEERS TREATED",
            PeerCondition::Kind::kLessThanFrac, 0.25},
           {"Y[S] <= T[A]? WHEN AT LEAST 2 PEERS TREATED",
            PeerCondition::Kind::kAtLeastCount, 2.0},
           {"Y[S] <= T[A]? WHEN AT MOST 3 PEERS TREATED",
            PeerCondition::Kind::kAtMostCount, 3.0},
           {"Y[S] <= T[A]? WHEN EXACTLY 1 PEERS TREATED",
            PeerCondition::Kind::kExactlyCount, 1.0}}) {
    Result<CausalQuery> q = ParseQuery(c.text);
    ASSERT_TRUE(q.ok()) << c.text;
    ASSERT_TRUE(q->peer_condition.has_value());
    EXPECT_EQ(q->peer_condition->kind, c.kind) << c.text;
    EXPECT_NEAR(q->peer_condition->value, c.value, 1e-12) << c.text;
  }
}

TEST(ParserTest, ProgramMixesStatements) {
  Result<Program> program = ParseProgram(R"(
    Prestige[A] <= Qualification[A] WHERE Person(A)
    AVG_Score[A] <= Score[S] WHERE Author(A, S);
    AVG_Score[A] <= Prestige[A]?
  )");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->rules.size(), 1u);
  EXPECT_EQ(program->aggregate_rules.size(), 1u);
  EXPECT_EQ(program->queries.size(), 1u);
}

TEST(ParserTest, ConstantsInTerms) {
  Result<CausalQuery> q =
      ParseQuery(R"(Score[S] <= Prestige["Bob"]? WHERE Author("Bob", S))");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->treatment.args[0].kind, Term::Kind::kConstant);
  EXPECT_EQ(q->where.atoms[0].args[0].text, "Bob");
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("Score[S] <= ?").ok());
  EXPECT_FALSE(ParseQuery("Score[S] Prestige[A]?").ok());
  EXPECT_FALSE(ParseQuery("Score[S] <= A[X], B[Y]?").ok());
  EXPECT_FALSE(ParseRule("Score[S] <=").ok());
  EXPECT_FALSE(
      ParseQuery("Y[S] <= T[A]? WHEN MORE THAN 5 PEERS TREATED").ok());
  EXPECT_FALSE(ParseQuery("Y[S] <= T[A]? WHEN AT 2 PEERS TREATED").ok());
  EXPECT_FALSE(ParseRule("Score[S] <= T[A] WHERE").ok());
  // A rule is not a query and vice versa.
  EXPECT_FALSE(ParseRule("Score[S] <= T[A]?").ok());
  EXPECT_FALSE(ParseQuery("Score[S] <= T[A]").ok());
}

TEST(ParserTest, FractionForms) {
  for (const auto& [text, expected] :
       std::initializer_list<std::pair<const char*, double>>{
           {"Y[S] <= T[A]? WHEN MORE THAN 0.4 PEERS TREATED", 0.4},
           {"Y[S] <= T[A]? WHEN MORE THAN 40% PEERS TREATED", 0.4},
           {"Y[S] <= T[A]? WHEN MORE THAN 2/5 PEERS TREATED", 0.4}}) {
    Result<CausalQuery> q = ParseQuery(text);
    ASSERT_TRUE(q.ok()) << text;
    EXPECT_NEAR(q->peer_condition->value, expected, 1e-12);
  }
}

TEST(AstTest, PeerConditionSatisfied) {
  PeerCondition all{PeerCondition::Kind::kAll, 0.0};
  EXPECT_TRUE(all.Satisfied(3, 3));
  EXPECT_FALSE(all.Satisfied(2, 3));
  EXPECT_TRUE(all.Satisfied(0, 0));  // vacuous

  PeerCondition none{PeerCondition::Kind::kNone, 0.0};
  EXPECT_TRUE(none.Satisfied(0, 3));
  EXPECT_FALSE(none.Satisfied(1, 3));

  PeerCondition more{PeerCondition::Kind::kMoreThanFrac, 1.0 / 3.0};
  EXPECT_TRUE(more.Satisfied(2, 3));
  EXPECT_FALSE(more.Satisfied(1, 3));
  EXPECT_FALSE(more.Satisfied(0, 0));

  PeerCondition at_least{PeerCondition::Kind::kAtLeastCount, 2.0};
  EXPECT_TRUE(at_least.Satisfied(2, 5));
  EXPECT_FALSE(at_least.Satisfied(1, 5));

  PeerCondition exactly{PeerCondition::Kind::kExactlyCount, 1.0};
  EXPECT_TRUE(exactly.Satisfied(1, 4));
  EXPECT_FALSE(exactly.Satisfied(2, 4));
}

TEST(AstTest, RoundTripPrinting) {
  // Parse -> print -> parse is stable.
  const char* text =
      "Score[S] <= Prestige[A]? WHEN MORE THAN 33% PEERS TREATED "
      "WHERE Submitted(S, C), Blind[C] = TRUE";
  Result<CausalQuery> q = ParseQuery(text);
  ASSERT_TRUE(q.ok());
  Result<CausalQuery> again = ParseQuery(q->ToString());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->ToString(), q->ToString());
}

TEST(AstTest, SplitAggregateName) {
  AggregateKind kind;
  EXPECT_TRUE(SplitAggregateName("AVG_Score", &kind));
  EXPECT_EQ(kind, AggregateKind::kAvg);
  EXPECT_TRUE(SplitAggregateName("SUM_Bill", &kind));
  EXPECT_FALSE(SplitAggregateName("Score", &kind));
  EXPECT_FALSE(SplitAggregateName("Fancy_Score", &kind));
  EXPECT_FALSE(SplitAggregateName("_Score", &kind));
  EXPECT_FALSE(SplitAggregateName("AVG_", &kind));
}

}  // namespace
}  // namespace carl
