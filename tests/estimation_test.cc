// Tests for core/estimation on hand-constructed unit tables with known
// linear generative structure — verifies the ATE ψ-difference conversion,
// the AIE/ARE/AOE decomposition, and the propensity-based estimators.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/estimation.h"
#include "core/unit_table.h"

namespace carl {
namespace {

// Builds a relational unit table: n units, peer counts 0..4, linear world
//   y = 2 + tau*t + gamma*frac_treated_peers + 0.5*z + noise,
// where z confounds t (P(t=1) depends on z).
UnitTable MakeRelationalTable(size_t n, double tau, double gamma,
                              double noise_sd, uint64_t seed) {
  Rng rng(seed);
  UnitTable table;
  table.relational = true;
  table.peer_count_col = "peer_count";
  table.peer_treated_count_col = "peer_treated_count";
  table.peer_t_cols = {"peer_t_mean", "peer_t_count"};
  table.own_covariate_cols = {"own_Z_mean"};
  table.embedding_kind = EmbeddingKind::kMean;
  table.peer_t_embedding = MakeEmbedding(EmbeddingKind::kMean);
  table.data = FlatTable({"y", "t", "peer_count", "peer_treated_count",
                          "peer_t_mean", "peer_t_count", "own_Z_mean"});
  for (size_t i = 0; i < n; ++i) {
    double z = rng.Normal();
    double t = rng.Bernoulli(1.0 / (1.0 + std::exp(-1.2 * z))) ? 1.0 : 0.0;
    double peers = static_cast<double>(rng.UniformInt(0, 4));
    double treated = 0.0;
    for (int p = 0; p < static_cast<int>(peers); ++p) {
      if (rng.Bernoulli(0.5)) treated += 1.0;
    }
    double frac = peers > 0 ? treated / peers : 0.0;
    double y = 2.0 + tau * t + gamma * frac + 0.5 * z +
               rng.Normal(0.0, noise_sd);
    table.data.AddRow({y, t, peers, treated, frac, peers, z});
    table.units.push_back({static_cast<SymbolId>(i)});
  }
  return table;
}

TEST(EstimateAteTest, ConvertsPsiDifferenceForRelationalData) {
  // ATE(all vs none) = tau + gamma * P(unit has peers): units without
  // peers receive no relational contribution.
  const double tau = 1.5, gamma = 0.8;
  UnitTable table = MakeRelationalTable(4000, tau, gamma, 0.05, 7);
  Result<double> ate =
      EstimateAte(table, table.data, EstimatorKind::kRegression);
  ASSERT_TRUE(ate.ok());
  const std::vector<double>& peers = table.data.Column("peer_count");
  double frac_with_peers = 0.0;
  for (double p : peers) {
    if (p > 0) frac_with_peers += 1.0;
  }
  frac_with_peers /= static_cast<double>(peers.size());
  EXPECT_NEAR(*ate, tau + gamma * frac_with_peers, 0.05);
}

TEST(EstimateAteTest, NonRelationalReducesToCoefficient) {
  UnitTable table;
  table.relational = false;
  table.own_covariate_cols = {"own_Z_mean"};
  table.data = FlatTable({"y", "t", "own_Z_mean"});
  Rng rng(9);
  for (int i = 0; i < 2000; ++i) {
    double z = rng.Normal();
    double t = rng.Bernoulli(1.0 / (1.0 + std::exp(-z))) ? 1.0 : 0.0;
    table.data.AddRow({3.0 - 2.0 * t + 1.0 * z + rng.Normal(0, 0.05), t, z});
  }
  Result<double> ate =
      EstimateAte(table, table.data, EstimatorKind::kRegression);
  ASSERT_TRUE(ate.ok());
  EXPECT_NEAR(*ate, -2.0, 0.02);
}

TEST(EstimateAteTest, PropensityEstimatorsAdjustConfounding) {
  // Strong confounding through z; naive is far from tau, all the
  // propensity-based estimators get close.
  UnitTable table = MakeRelationalTable(8000, 1.0, 0.0, 0.1, 11);
  Result<NaiveContrast> naive = ComputeNaiveContrast(table, table.data);
  ASSERT_TRUE(naive.ok());
  EXPECT_GT(naive->difference, 1.25);  // biased upward by z
  for (EstimatorKind kind :
       {EstimatorKind::kMatching, EstimatorKind::kIpw,
        EstimatorKind::kStratification}) {
    Result<double> ate = EstimateAte(table, table.data, kind);
    ASSERT_TRUE(ate.ok()) << EstimatorKindToString(kind);
    EXPECT_NEAR(*ate, 1.0, 0.2) << EstimatorKindToString(kind);
  }
}

TEST(RelationalEffectsTest, DecompositionRecoversComponents) {
  const double tau = 1.5, gamma = 0.7;
  UnitTable table = MakeRelationalTable(6000, tau, gamma, 0.05, 13);
  // The generative relational effect is linear in the treated fraction,
  // so MORE THAN 50% as condition captures roughly gamma * E[frac | c=1]
  // - gamma * E[frac | c=0]; with ALL/NONE-style conditions on a linear
  // world the indicator regression still splits own vs peer effects.
  PeerCondition cond;
  cond.kind = PeerCondition::Kind::kMoreThanFrac;
  cond.value = 0.5;
  Result<RelationalEffects> effects = EstimateRelationalEffects(
      table, table.data, cond, EstimatorKind::kRegression);
  ASSERT_TRUE(effects.ok());
  EXPECT_NEAR(effects->aie, tau, 0.05);
  EXPECT_GT(effects->are, 0.2);  // positive peer contribution
  EXPECT_NEAR(effects->aoe, effects->aie + effects->are, 1e-12);
  EXPECT_NEAR(effects->aie_psi, tau, 0.05);
}

TEST(RelationalEffectsTest, ThresholdWorldRecoveredExactly) {
  // World where the relational effect is itself a threshold indicator —
  // the synthetic-review generative form. are should match gamma.
  Rng rng(17);
  UnitTable table;
  table.relational = true;
  table.peer_count_col = "peer_count";
  table.peer_treated_count_col = "peer_treated_count";
  table.peer_t_cols = {"peer_t_mean", "peer_t_count"};
  table.embedding_kind = EmbeddingKind::kMean;
  table.peer_t_embedding = MakeEmbedding(EmbeddingKind::kMean);
  table.data = FlatTable({"y", "t", "peer_count", "peer_treated_count",
                          "peer_t_mean", "peer_t_count"});
  const double tau = 1.0, gamma = 0.5;
  for (int i = 0; i < 6000; ++i) {
    double t = rng.Bernoulli(0.5) ? 1.0 : 0.0;
    double peers = static_cast<double>(rng.UniformInt(1, 5));
    double treated = 0.0;
    for (int p = 0; p < static_cast<int>(peers); ++p) {
      if (rng.Bernoulli(0.4)) treated += 1.0;
    }
    double frac = treated / peers;
    double c = frac > 1.0 / 3.0 ? 1.0 : 0.0;
    double y = tau * t + gamma * c + rng.Normal(0.0, 0.05);
    table.data.AddRow({y, t, peers, treated, frac, peers});
  }
  PeerCondition cond;
  cond.kind = PeerCondition::Kind::kMoreThanFrac;
  cond.value = 1.0 / 3.0;
  Result<RelationalEffects> effects = EstimateRelationalEffects(
      table, table.data, cond, EstimatorKind::kRegression);
  ASSERT_TRUE(effects.ok());
  EXPECT_NEAR(effects->aie, tau, 0.01);
  EXPECT_NEAR(effects->are, gamma, 0.01);
  EXPECT_NEAR(effects->aoe, tau + gamma, 0.02);
}

TEST(RelationalEffectsTest, RejectsNonRelationalTable) {
  UnitTable table;
  table.relational = false;
  table.data = FlatTable({"y", "t"});
  table.data.AddRow({1, 1});
  table.data.AddRow({0, 0});
  PeerCondition cond;
  cond.kind = PeerCondition::Kind::kAll;
  Result<RelationalEffects> effects = EstimateRelationalEffects(
      table, table.data, cond, EstimatorKind::kRegression);
  EXPECT_FALSE(effects.ok());
  EXPECT_EQ(effects.status().code(), StatusCode::kFailedPrecondition);
}

TEST(NaiveContrastTest, ComputesGroupStatistics) {
  UnitTable table;
  table.data = FlatTable({"y", "t"});
  table.data.AddRow({10, 1});
  table.data.AddRow({8, 1});
  table.data.AddRow({2, 0});
  table.data.AddRow({4, 0});
  Result<NaiveContrast> naive = ComputeNaiveContrast(table, table.data);
  ASSERT_TRUE(naive.ok());
  EXPECT_DOUBLE_EQ(naive->treated_mean, 9.0);
  EXPECT_DOUBLE_EQ(naive->control_mean, 3.0);
  EXPECT_DOUBLE_EQ(naive->difference, 6.0);
  EXPECT_EQ(naive->n_treated, 2u);
  EXPECT_EQ(naive->n_control, 2u);
  EXPECT_GT(naive->correlation, 0.9);
}

TEST(EstimatorKindTest, ParseRoundTrip) {
  for (EstimatorKind kind :
       {EstimatorKind::kRegression, EstimatorKind::kMatching,
        EstimatorKind::kIpw, EstimatorKind::kStratification}) {
    Result<EstimatorKind> parsed =
        ParseEstimatorKind(EstimatorKindToString(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_TRUE(ParseEstimatorKind("PSM").ok());
  EXPECT_TRUE(ParseEstimatorKind("ols").ok());
  EXPECT_FALSE(ParseEstimatorKind("deep-iv").ok());
}

// Estimation on a row subset (the CATE path used by the Fig 8/10 benches).
TEST(EstimateAteTest, WorksOnRowSubsets) {
  UnitTable table = MakeRelationalTable(4000, 2.0, 0.0, 0.05, 23);
  std::vector<size_t> first_half(2000);
  for (size_t i = 0; i < 2000; ++i) first_half[i] = i;
  Result<double> ate = EstimateAte(table, table.data.SelectRows(first_half),
                                   EstimatorKind::kRegression);
  ASSERT_TRUE(ate.ok());
  EXPECT_NEAR(*ate, 2.0, 0.1);
}

}  // namespace
}  // namespace carl
