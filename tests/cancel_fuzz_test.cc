// Cancel-fuzz harness: a sibling thread fires ExecToken::Cancel() at
// randomized delays while the session grounds / extends, at CARL_THREADS
// 1 and 4. The contract under test:
//   - every outcome is binary: either the pass finished first (result
//     canonically identical to an unfaulted ground) or it surfaces
//     Status kCancelled — never an abort, never a torn graph;
//   - a cancelled pass does not poison the session: the binding cache
//     is pointer-identical across a subsequent aborted pass, and the
//     next unguarded query matches a from-scratch ground;
//   - guard_cancelled accounts for every tripped token, exactly once,
//     no matter how the cancel raced the pass.
// Deterministically seeded so failures replay. Runs in the ASan+UBSan
// and TSan CI legs (ctest label: robustness); TSan is the point: the
// cross-thread trip is a relaxed-atomic protocol.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "carl/carl.h"
#include "datagen/mimic.h"
#include "exec/morsel.h"
#include "fixtures.h"
#include "obs/metrics.h"

namespace carl {
namespace {

using test_fixtures::Canonicalize;
using test_fixtures::CanonicalGraph;
using test_fixtures::MiniMimicDataset;
using test_fixtures::NamedDataset;
using test_fixtures::ReviewToyDataset;
using test_fixtures::ScopedThreads;

uint64_t CancelledCount() {
  return obs::Registry::Global().GetCounter("guard_cancelled").value();
}

// First entity predicate bearing an attribute: mutations through it are
// always graph-relevant, so every fuzz round does real grounding work
// for the cancel to land in (an irrelevant fact would be a pure cache
// hit with nothing to interrupt).
std::string EntityWithAttribute(const Schema& schema) {
  for (const AttributeDef& attr : schema.attributes()) {
    const Predicate& pred = schema.predicate(attr.predicate);
    if (pred.kind == PredicateKind::kEntity) return pred.name;
  }
  return schema.predicates()[0].name;
}

void ExpectPointerIdentical(
    const std::vector<std::pair<BindingKeyId, const BindingTable*>>& before,
    const std::vector<std::pair<BindingKeyId, const BindingTable*>>& after) {
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].first, after[i].first);
    EXPECT_EQ(before[i].second, after[i].second)
        << "cached table re-allocated across a cancelled pass: "
        << before[i].first;
  }
}

// After any cancelled round the session state is nondeterministic in
// *which* pass got how far — so the no-poison proof is deterministic:
// run one more pass with a pre-cancelled token (it aborts at the first
// checkpoint) and require the binding cache to be pointer-identical
// across it, then an unguarded pass to match a from-scratch ground.
void ExpectSessionUnpoisoned(QuerySession& session, Instance& db,
                             const RelationalCausalModel& model) {
  auto before = session.binding_cache().SnapshotEntries();
  guard::ExecToken dead;
  dead.Cancel();
  {
    guard::ScopedToken scoped(&dead);
    Result<std::shared_ptr<const GroundedModel>> aborted =
        session.Ground(model);
    ASSERT_FALSE(aborted.ok());
    EXPECT_EQ(aborted.status().code(), StatusCode::kCancelled);
  }
  ExpectPointerIdentical(before, session.binding_cache().SnapshotEntries());

  Result<std::shared_ptr<const GroundedModel>> recovered =
      session.Ground(model);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  Result<GroundedModel> fresh = GroundModel(db, model);
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  EXPECT_TRUE(Canonicalize(**recovered) == Canonicalize(*fresh))
      << "post-cancel session grounding diverged from scratch";
}

TEST(CancelFuzzTest, RandomizedSiblingCancelDuringGroundAndExtend) {
  std::vector<NamedDataset> workloads;
  workloads.push_back({"REVIEW", ReviewToyDataset()});
  workloads.push_back({"MIMIC", MiniMimicDataset(300, 30)});
  constexpr int kRounds = 6;

  for (NamedDataset& workload : workloads) {
    SCOPED_TRACE(workload.name);
    Result<RelationalCausalModel> model = RelationalCausalModel::Parse(
        *workload.dataset.schema, workload.dataset.model_text);
    ASSERT_TRUE(model.ok()) << model.status();
    Instance& db = *workload.dataset.instance;
    const std::string entity = EntityWithAttribute(db.schema());
    int mutation = 0;

    for (int threads : {1, 4}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      ScopedThreads scoped_threads(threads);
      // Fixed seed per (workload, threads) leg: a failing schedule
      // replays under a debugger instead of vanishing.
      std::mt19937_64 rng(0x5eed0000u + static_cast<uint64_t>(threads));
      std::uniform_int_distribution<int> delay_us(0, 2000);

      QuerySession session(&db);
      ASSERT_TRUE(session.Ground(*model).ok());

      int cancelled_rounds = 0;
      for (int round = 0; round < kRounds; ++round) {
        SCOPED_TRACE("round=" + std::to_string(round));
        // Stale the cached entry so the guarded pass below extends /
        // re-grounds instead of returning the cache hit untouched.
        ASSERT_TRUE(
            db.AddFact(entity, {std::string("cz_") + workload.name + "_t" +
                                std::to_string(threads) + "_" +
                                std::to_string(mutation++)})
                .ok());

        guard::ExecToken token;
        const int delay = delay_us(rng);
        uint64_t cancels_before = CancelledCount();
        std::thread sibling([&token, delay] {
          std::this_thread::sleep_for(std::chrono::microseconds(delay));
          token.Cancel();
        });
        Result<std::shared_ptr<const GroundedModel>> result = [&] {
          guard::ScopedToken scoped(&token);
          return session.Ground(*model);
        }();
        sibling.join();

        // Exactly-once accounting: the sibling always trips the token
        // (cancel is the only stop source here), win or lose the race.
        EXPECT_EQ(token.reason(), guard::StopReason::kCancelled);
        EXPECT_EQ(CancelledCount(), cancels_before + 1);

        if (result.ok()) {
          // Cancel lost the race: the graph must match an unfaulted
          // ground of the same state.
          Result<GroundedModel> fresh = GroundModel(db, *model);
          ASSERT_TRUE(fresh.ok()) << fresh.status();
          EXPECT_TRUE(Canonicalize(**result) == Canonicalize(*fresh))
              << "completed-despite-cancel grounding diverged";
        } else {
          ++cancelled_rounds;
          EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
              << result.status();
          ExpectSessionUnpoisoned(session, db, *model);
        }
      }
      // Not an assertion — schedules are machine-dependent — but the
      // log should show the fuzz actually exercised both outcomes.
      CARL_LOG(INFO) << "cancel fuzz " << workload.name << " threads="
                     << threads << ": " << cancelled_rounds << "/" << kRounds
                     << " rounds cancelled";
    }
  }
}

// Cancel mid-steal: the same binary contract, aimed at the morsel
// scheduler's steal path. A skew-stressed MIMIC instance
// (prescription_skew=100) pins one worker on the hot head-of-index slice
// so the drained workers spend the pass stealing from its range; the
// sibling cancel fires at seed-matrixed delays and so lands while CAS
// steal loops are in flight. Runs in the TSan CI leg — the interesting
// bug class is a stop flag racing the range CAS, not a logic error.
TEST(CancelFuzzTest, CancelMidStealSeedMatrix) {
  datagen::MimicConfig config;
  config.num_patients = 600;
  config.num_caregivers = 40;
  config.prescription_skew = 100;
  Result<datagen::Dataset> data = datagen::GenerateMimic(config);
  ASSERT_TRUE(data.ok()) << data.status();
  Instance& db = *data->instance;
  Result<RelationalCausalModel> model =
      RelationalCausalModel::Parse(*data->schema, data->model_text);
  ASSERT_TRUE(model.ok()) << model.status();
  const std::string entity = EntityWithAttribute(db.schema());

  ScopedThreads scoped_threads(4);
  const bool prev_stealing = exec::MorselStealingEnabled();
  exec::SetMorselStealing(true);
  const uint64_t steals_before = exec::MorselStealCount();
  int mutation = 0;
  int cancelled_rounds = 0;

  QuerySession session(&db);
  ASSERT_TRUE(session.Ground(*model).ok());
  for (uint64_t seed : {0xa11c0001ull, 0xa11c0002ull, 0xa11c0003ull}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<int> delay_us(0, 3000);
    for (int round = 0; round < 3; ++round) {
      SCOPED_TRACE("round=" + std::to_string(round));
      ASSERT_TRUE(
          db.AddFact(entity, {"cz_steal_" + std::to_string(mutation++)})
              .ok());
      guard::ExecToken token;
      const int delay = delay_us(rng);
      uint64_t cancels_before = CancelledCount();
      std::thread sibling([&token, delay] {
        std::this_thread::sleep_for(std::chrono::microseconds(delay));
        token.Cancel();
      });
      Result<std::shared_ptr<const GroundedModel>> result = [&] {
        guard::ScopedToken scoped(&token);
        return session.Ground(*model);
      }();
      sibling.join();
      EXPECT_EQ(token.reason(), guard::StopReason::kCancelled);
      EXPECT_EQ(CancelledCount(), cancels_before + 1);
      if (result.ok()) {
        Result<GroundedModel> fresh = GroundModel(db, *model);
        ASSERT_TRUE(fresh.ok()) << fresh.status();
        EXPECT_TRUE(Canonicalize(**result) == Canonicalize(*fresh))
            << "completed-despite-cancel grounding diverged";
      } else {
        ++cancelled_rounds;
        EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
            << result.status();
        ExpectSessionUnpoisoned(session, db, *model);
      }
    }
  }
  exec::SetMorselStealing(prev_stealing);
  EXPECT_GT(exec::MorselStealCount(), steals_before)
      << "the skewed cancel-fuzz workload never exercised a steal";
  CARL_LOG(INFO) << "cancel-mid-steal fuzz: " << cancelled_rounds
                 << "/9 rounds cancelled, "
                 << (exec::MorselStealCount() - steals_before) << " steals";
}

// Deterministic floor under the stochastic test: a pre-cancelled token
// must stop grounding/extend outright at both thread counts, and the
// session must come back clean — even if every randomized schedule
// above happens to lose the race on this machine.
TEST(CancelFuzzTest, PreCancelledTokenAlwaysStopsAndSessionRecovers) {
  for (int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    datagen::Dataset data = ReviewToyDataset();
    Instance& db = *data.instance;
    Result<RelationalCausalModel> model =
        RelationalCausalModel::Parse(*data.schema, data.model_text);
    ASSERT_TRUE(model.ok()) << model.status();
    ScopedThreads scoped_threads(threads);

    QuerySession session(&db);
    ASSERT_TRUE(session.Ground(*model).ok());
    ASSERT_TRUE(
        db.AddFact("Person", {"cz_det_t" + std::to_string(threads)}).ok());

    guard::ExecToken token;
    token.Cancel();
    {
      guard::ScopedToken scoped(&token);
      Result<std::shared_ptr<const GroundedModel>> stopped =
          session.Ground(*model);
      ASSERT_FALSE(stopped.ok());
      EXPECT_EQ(stopped.status().code(), StatusCode::kCancelled);
    }
    ExpectSessionUnpoisoned(session, db, *model);
  }
}

}  // namespace
}  // namespace carl
