// Tests for the embedding strategies of paper §5.2.2.

#include <gtest/gtest.h>

#include "core/embedding.h"

namespace carl {
namespace {

TEST(EmbeddingTest, MeanPlusCount) {
  std::unique_ptr<Embedding> e = MakeEmbedding(EmbeddingKind::kMean);
  EXPECT_EQ(e->dims(), 2u);
  EXPECT_EQ(e->DimNames(), (std::vector<std::string>{"mean", "count"}));
  std::vector<double> out = e->Apply({1, 0, 1, 1});
  EXPECT_DOUBLE_EQ(out[0], 0.75);
  EXPECT_DOUBLE_EQ(out[1], 4.0);
  out = e->Apply({});
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 0.0);
}

TEST(EmbeddingTest, MedianPlusCount) {
  std::unique_ptr<Embedding> e = MakeEmbedding(EmbeddingKind::kMedian);
  std::vector<double> out = e->Apply({5, 1, 3});
  EXPECT_DOUBLE_EQ(out[0], 3.0);
  EXPECT_DOUBLE_EQ(out[1], 3.0);
}

TEST(EmbeddingTest, MomentsDimsFollowOption) {
  EmbeddingOptions options;
  options.moments = 2;
  std::unique_ptr<Embedding> e =
      MakeEmbedding(EmbeddingKind::kMoments, options);
  EXPECT_EQ(e->dims(), 3u);  // m1, m2, count
  std::vector<double> out = e->Apply({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(out[0], 2.5);   // mean
  EXPECT_DOUBLE_EQ(out[1], 1.25);  // population variance
  EXPECT_DOUBLE_EQ(out[2], 4.0);   // count
}

TEST(EmbeddingTest, MomentsThirdIsSkewness) {
  EmbeddingOptions options;
  options.moments = 3;
  std::unique_ptr<Embedding> e =
      MakeEmbedding(EmbeddingKind::kMoments, options);
  std::vector<double> sym = e->Apply({1, 2, 3});
  EXPECT_NEAR(sym[2], 0.0, 1e-12);
  std::vector<double> skewed = e->Apply({1, 1, 1, 10});
  EXPECT_GT(skewed[2], 0.0);
}

TEST(EmbeddingTest, PaddingFitsWidthAndPads) {
  EmbeddingOptions options;
  options.padding_value = -1.0;
  std::unique_ptr<Embedding> e =
      MakeEmbedding(EmbeddingKind::kPadding, options);
  e->Fit({{1, 0}, {1, 1, 0}, {0}});
  EXPECT_EQ(e->dims(), 3u);
  // Values sorted descending, padded with the out-of-band marker.
  EXPECT_EQ(e->Apply({0, 1}), (std::vector<double>{1, 0, -1}));
  EXPECT_EQ(e->Apply({}), (std::vector<double>{-1, -1, -1}));
  // Oversized groups truncate to the fitted width.
  EXPECT_EQ(e->Apply({5, 4, 3, 2}), (std::vector<double>{5, 4, 3}));
}

TEST(EmbeddingTest, PaddingRespectsMaxWidth) {
  EmbeddingOptions options;
  options.padding_max_width = 2;
  std::unique_ptr<Embedding> e =
      MakeEmbedding(EmbeddingKind::kPadding, options);
  e->Fit({{1, 2, 3, 4, 5}});
  EXPECT_EQ(e->dims(), 2u);
}

TEST(EmbeddingTest, ParseNames) {
  EXPECT_TRUE(ParseEmbeddingKind("mean").ok());
  EXPECT_TRUE(ParseEmbeddingKind("MEDIAN").ok());
  EXPECT_TRUE(ParseEmbeddingKind("moments").ok());
  EXPECT_TRUE(ParseEmbeddingKind("padding").ok());
  EXPECT_FALSE(ParseEmbeddingKind("rnn").ok());
  for (EmbeddingKind kind :
       {EmbeddingKind::kMean, EmbeddingKind::kMedian, EmbeddingKind::kMoments,
        EmbeddingKind::kPadding}) {
    Result<EmbeddingKind> parsed =
        ParseEmbeddingKind(EmbeddingKindToString(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
}

// Property sweep: every embedding returns exactly dims() values on any
// group size, and is permutation-invariant (sets, not sequences).
class EmbeddingPropertyTest
    : public ::testing::TestWithParam<EmbeddingKind> {};

TEST_P(EmbeddingPropertyTest, DimsStableAcrossGroupSizes) {
  std::unique_ptr<Embedding> e = MakeEmbedding(GetParam());
  e->Fit({{1, 2, 3, 4}, {5}, {}});
  for (size_t n : {0u, 1u, 2u, 4u}) {
    std::vector<double> group(n, 1.0);
    EXPECT_EQ(e->Apply(group).size(), e->dims()) << "n=" << n;
  }
  EXPECT_EQ(e->DimNames().size(), e->dims());
}

TEST_P(EmbeddingPropertyTest, PermutationInvariant) {
  std::unique_ptr<Embedding> e = MakeEmbedding(GetParam());
  e->Fit({{3, 1, 2}});
  std::vector<double> a = e->Apply({3, 1, 2});
  std::vector<double> b = e->Apply({2, 3, 1});
  EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(AllEmbeddings, EmbeddingPropertyTest,
                         ::testing::Values(EmbeddingKind::kMean,
                                           EmbeddingKind::kMedian,
                                           EmbeddingKind::kMoments,
                                           EmbeddingKind::kPadding),
                         [](const auto& info) {
                           return EmbeddingKindToString(info.param);
                         });

}  // namespace
}  // namespace carl
