// Tests for the query static-analysis API (ExplainQuery) and DOT export.

#include <gtest/gtest.h>

#include "core/explain.h"
#include "datagen/review_toy.h"
#include "graph/dot_export.h"

namespace carl {
namespace {

class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<datagen::Dataset> data = datagen::MakeReviewToy();
    CARL_CHECK_OK(data.status());
    data_ = std::move(*data);
    Result<RelationalCausalModel> model =
        RelationalCausalModel::Parse(*data_.schema, data_.model_text);
    CARL_CHECK_OK(model.status());
    Result<std::unique_ptr<CarlEngine>> engine =
        CarlEngine::Create(data_.instance.get(), std::move(*model));
    CARL_CHECK_OK(engine.status());
    engine_ = std::move(*engine);
  }
  datagen::Dataset data_;
  std::unique_ptr<CarlEngine> engine_;
};

TEST_F(ExplainTest, ReportsPlanForAggregateQuery) {
  Result<QueryExplanation> explanation =
      ExplainQuery(engine_.get(), "AVG_Score[A] <= Prestige[A]?");
  ASSERT_TRUE(explanation.ok());
  EXPECT_EQ(explanation->treatment_attribute, "Prestige");
  EXPECT_EQ(explanation->response_attribute, "AVG_Score");
  EXPECT_EQ(explanation->unit_predicate, "Person");
  EXPECT_FALSE(explanation->unified);
  EXPECT_EQ(explanation->num_units, 3u);
  EXPECT_TRUE(explanation->relational);
  EXPECT_EQ(explanation->max_peers, 2u);
  EXPECT_NEAR(explanation->mean_peers, (1 + 1 + 2) / 3.0, 1e-12);

  // Adjustment set: own and peer Qualification.
  ASSERT_EQ(explanation->covariates.size(), 2u);
  EXPECT_EQ(explanation->covariates[0].attribute, "Qualification");
  EXPECT_EQ(explanation->covariates[0].role, "own");
  EXPECT_EQ(explanation->covariates[1].role, "peer");

  std::string text = explanation->ToString();
  EXPECT_NE(text.find("Prestige"), std::string::npos);
  EXPECT_NE(text.find("Qualification"), std::string::npos);
  EXPECT_NE(text.find("relational"), std::string::npos);
}

TEST_F(ExplainTest, ReportsUnificationRule) {
  Result<QueryExplanation> explanation =
      ExplainQuery(engine_.get(), "Score[S] <= Prestige[A]?");
  ASSERT_TRUE(explanation.ok());
  EXPECT_TRUE(explanation->unified);
  EXPECT_EQ(explanation->response_attribute, "AVG_Score_unified");
  EXPECT_NE(explanation->unification_rule.find("Author"),
            std::string::npos);
}

TEST_F(ExplainTest, CriterionCheckIntegrated) {
  EngineOptions options;
  options.check_criterion = true;
  Result<QueryExplanation> explanation =
      ExplainQuery(engine_.get(), "AVG_Score[A] <= Prestige[A]?", options);
  ASSERT_TRUE(explanation.ok());
  EXPECT_TRUE(explanation->criterion_checked);
  EXPECT_TRUE(explanation->criterion_ok);
  EXPECT_NE(explanation->ToString().find("holds"), std::string::npos);
}

TEST_F(ExplainTest, NonRelationalQueryReportsSutva) {
  Result<QueryExplanation> explanation =
      ExplainQuery(engine_.get(), "Qualification[A] <= Prestige[A]?");
  ASSERT_TRUE(explanation.ok());
  EXPECT_FALSE(explanation->relational);
  EXPECT_NE(explanation->ToString().find("SUTVA"), std::string::npos);
}

TEST_F(ExplainTest, RejectsBadInput) {
  EXPECT_FALSE(ExplainQuery(nullptr, "AVG_Score[A] <= Prestige[A]?").ok());
  EXPECT_FALSE(ExplainQuery(engine_.get(), "not a query").ok());
  EXPECT_FALSE(ExplainQuery(engine_.get(), "Ghost[A] <= Prestige[A]?").ok());
}

TEST_F(ExplainTest, DotExportContainsNodesAndEdges) {
  Result<std::string> dot = ExportDot(engine_->grounded());
  ASSERT_TRUE(dot.ok());
  EXPECT_NE(dot->find("digraph carl"), std::string::npos);
  EXPECT_NE(dot->find("Score[s1]"), std::string::npos);
  EXPECT_NE(dot->find("->"), std::string::npos);
  // Latent Quality nodes render dashed; aggregates as triangles.
  EXPECT_NE(dot->find("style=dashed"), std::string::npos);
  EXPECT_NE(dot->find("shape=triangle"), std::string::npos);
}

TEST_F(ExplainTest, DotExportFiltersAttributes) {
  DotOptions options;
  options.attributes = {"Score"};
  Result<std::string> dot = ExportDot(engine_->grounded(), options);
  ASSERT_TRUE(dot.ok());
  EXPECT_NE(dot->find("Score[s1]"), std::string::npos);
  EXPECT_EQ(dot->find("Prestige[Bob]"), std::string::npos);

  DotOptions bad;
  bad.attributes = {"Ghost"};
  EXPECT_FALSE(ExportDot(engine_->grounded(), bad).ok());
}

TEST_F(ExplainTest, DotExportCapsNodes) {
  DotOptions options;
  options.max_nodes = 2;
  Result<std::string> dot = ExportDot(engine_->grounded(), options);
  ASSERT_TRUE(dot.ok());
  // Exactly two node declarations (lines with "[label=").
  size_t count = 0, pos = 0;
  while ((pos = dot->find("[label=", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 2u);
}

}  // namespace
}  // namespace carl
