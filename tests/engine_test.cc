// End-to-end engine tests on the toy instance: query resolution,
// automatic unification, filters, estimator/bootstrap plumbing.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>

#include "core/engine.h"
#include "datagen/review_toy.h"
#include "lang/parser.h"

namespace carl {
namespace {

class EngineToyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<datagen::Dataset> data = datagen::MakeReviewToy();
    CARL_CHECK_OK(data.status());
    data_ = std::move(*data);
    Result<RelationalCausalModel> model =
        RelationalCausalModel::Parse(*data_.schema, data_.model_text);
    CARL_CHECK_OK(model.status());
    Result<std::unique_ptr<CarlEngine>> engine =
        CarlEngine::Create(data_.instance.get(), std::move(*model));
    CARL_CHECK_OK(engine.status());
    engine_ = std::move(*engine);
  }

  datagen::Dataset data_;
  std::unique_ptr<CarlEngine> engine_;
};

TEST_F(EngineToyTest, AnswersAggregatedResponseQuery) {
  Result<QueryAnswer> answer = engine_->Answer("AVG_Score[A] <= Prestige[A]?");
  ASSERT_TRUE(answer.ok());
  ASSERT_TRUE(answer->ate.has_value());
  EXPECT_EQ(answer->ate->num_units, 3u);
  EXPECT_TRUE(answer->ate->relational);
  EXPECT_EQ(answer->ate->response_attribute, "AVG_Score");
  // Naive difference: treated (Bob .75, Eva .4166) vs control (Carlos .1).
  EXPECT_NEAR(answer->ate->naive.difference,
              (0.75 + (0.75 + 0.4 + 0.1) / 3.0) / 2.0 - 0.1, 1e-9);
}

TEST_F(EngineToyTest, UnifiesResponseAutomatically) {
  // Score lives on Submission; the engine must derive the relational-path
  // aggregation (§4.3) and answer on author units.
  Result<QueryAnswer> answer = engine_->Answer("Score[S] <= Prestige[A]?");
  ASSERT_TRUE(answer.ok());
  ASSERT_TRUE(answer->ate.has_value());
  EXPECT_EQ(answer->ate->response_attribute, "AVG_Score_unified");
  EXPECT_EQ(answer->ate->num_units, 3u);
  // The derived aggregation equals the model's own AVG_Score rule, so both
  // queries agree on the naive contrast.
  Result<QueryAnswer> direct = engine_->Answer("AVG_Score[A] <= Prestige[A]?");
  ASSERT_TRUE(direct.ok());
  EXPECT_NEAR(answer->ate->naive.difference, direct->ate->naive.difference,
              1e-12);
  // Asking again reuses the derived rule (no duplicate registration).
  EXPECT_TRUE(engine_->Answer("Score[S] <= Prestige[A]?").ok());
}

TEST_F(EngineToyTest, WhereFilterRestrictsToVenue) {
  // Double-blind venue only (s2, s3): Bob drops out, Eva (treated) and
  // Carlos (control) remain.
  Result<QueryAnswer> answer = engine_->Answer(
      R"(AVG_Score[A] <= Prestige[A]? WHERE Submitted(S, C), Blind[C] = FALSE)");
  ASSERT_TRUE(answer.ok());
  ASSERT_TRUE(answer->ate.has_value());
  EXPECT_EQ(answer->ate->num_units, 2u);
  EXPECT_EQ(answer->ate->dropped_units, 1u);

  // The single-blind filter leaves only treated authors (Bob, Eva): the
  // contrast is undefined and the engine reports it instead of crashing.
  Result<QueryAnswer> degenerate = engine_->Answer(
      R"(AVG_Score[A] <= Prestige[A]? WHERE Submitted(S, C), Blind[C] = TRUE)");
  EXPECT_FALSE(degenerate.ok());
  EXPECT_EQ(degenerate.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(EngineToyTest, FilterWithoutLinkVariableFails) {
  // The filter references no Submission-typed variable.
  Result<QueryAnswer> answer = engine_->Answer(
      R"(AVG_Score[A] <= Prestige[A]? WHERE Blind[C] = TRUE)");
  EXPECT_FALSE(answer.ok());
}

TEST_F(EngineToyTest, RelationalEffectsQuery) {
  Result<QueryAnswer> answer = engine_->Answer(
      "AVG_Score[A] <= Prestige[A]? WHEN ALL PEERS TREATED");
  ASSERT_TRUE(answer.ok());
  ASSERT_TRUE(answer->effects.has_value());
  EXPECT_EQ(answer->effects->num_units, 3u);
  // Proposition 4.1 holds exactly in the decomposition regression.
  EXPECT_NEAR(answer->effects->aoe.value,
              answer->effects->aie.value + answer->effects->are.value, 1e-9);
  EXPECT_EQ(answer->effects->condition.kind, PeerCondition::Kind::kAll);
}

TEST_F(EngineToyTest, DispatchMatchesQueryForm) {
  Result<CausalQuery> ate_query = ParseQuery("AVG_Score[A] <= Prestige[A]?");
  ASSERT_TRUE(ate_query.ok());
  EXPECT_FALSE(engine_->AnswerRelationalEffects(*ate_query).ok());
  Result<CausalQuery> peer_query = ParseQuery(
      "AVG_Score[A] <= Prestige[A]? WHEN ALL PEERS TREATED");
  ASSERT_TRUE(peer_query.ok());
  EXPECT_FALSE(engine_->AnswerAte(*peer_query).ok());
}

// The deprecated shims (AnswerAte / AnswerRelationalEffects / the two
// Answer overloads) must stay bit-identical to the canonical
// Answer(QueryRequest) surface: carl_serve speaks only QueryRequest, so
// any drift between the paths would make served answers diverge from
// direct embedding calls.
TEST_F(EngineToyTest, DeprecatedShimsMatchQueryRequestSurface) {
  const std::string ate_text = "AVG_Score[A] <= Prestige[A]?";
  EngineOptions options;
  options.check_criterion = true;

  QueryRequest request(ate_text);
  request.options = options;
  QueryResponse canonical = engine_->Answer(request);
  ASSERT_TRUE(canonical.status.ok());
  ASSERT_TRUE(canonical.answer.ate.has_value());
  const AteAnswer& want = *canonical.answer.ate;

  auto expect_same_ate = [&](const AteAnswer& got) {
    EXPECT_EQ(0, std::memcmp(&got.ate.value, &want.ate.value,
                             sizeof(want.ate.value)));
    EXPECT_EQ(0, std::memcmp(&got.naive.difference, &want.naive.difference,
                             sizeof(want.naive.difference)));
    EXPECT_EQ(got.num_units, want.num_units);
    EXPECT_EQ(got.dropped_units, want.dropped_units);
    EXPECT_EQ(got.relational, want.relational);
    EXPECT_EQ(got.response_attribute, want.response_attribute);
    EXPECT_EQ(got.criterion_ok, want.criterion_ok);
  };

  // Answer(string) shim.
  Result<QueryAnswer> via_text = engine_->Answer(ate_text, options);
  ASSERT_TRUE(via_text.ok());
  ASSERT_TRUE(via_text->ate.has_value());
  expect_same_ate(*via_text->ate);

  // Answer(CausalQuery) and AnswerAte(CausalQuery) shims.
  Result<CausalQuery> parsed = ParseQuery(ate_text);
  ASSERT_TRUE(parsed.ok());
  Result<QueryAnswer> via_query = engine_->Answer(*parsed, options);
  ASSERT_TRUE(via_query.ok());
  ASSERT_TRUE(via_query->ate.has_value());
  expect_same_ate(*via_query->ate);
  Result<AteAnswer> via_ate = engine_->AnswerAte(*parsed, options);
  ASSERT_TRUE(via_ate.ok());
  expect_same_ate(*via_ate);

  // Relational-effects form through both surfaces.
  const std::string peer_text =
      "AVG_Score[A] <= Prestige[A]? WHEN ALL PEERS TREATED";
  QueryResponse canonical_fx = engine_->Answer(QueryRequest(peer_text));
  ASSERT_TRUE(canonical_fx.status.ok());
  ASSERT_TRUE(canonical_fx.answer.effects.has_value());
  const RelationalEffectsAnswer& want_fx = *canonical_fx.answer.effects;
  Result<CausalQuery> peer_query = ParseQuery(peer_text);
  ASSERT_TRUE(peer_query.ok());
  Result<RelationalEffectsAnswer> via_fx =
      engine_->AnswerRelationalEffects(*peer_query);
  ASSERT_TRUE(via_fx.ok());
  EXPECT_EQ(0, std::memcmp(&via_fx->aoe.value, &want_fx.aoe.value,
                           sizeof(want_fx.aoe.value)));
  EXPECT_EQ(0, std::memcmp(&via_fx->aie.value, &want_fx.aie.value,
                           sizeof(want_fx.aie.value)));
  EXPECT_EQ(0, std::memcmp(&via_fx->are.value, &want_fx.are.value,
                           sizeof(want_fx.are.value)));
  EXPECT_EQ(via_fx->num_units, want_fx.num_units);

  // Error surfacing stays aligned: the canonical path reports the same
  // wrong-form rejection the shims do, inside response.status.
  QueryResponse wrong_form = engine_->Answer(QueryRequest(*peer_query));
  ASSERT_TRUE(wrong_form.status.ok());
  EXPECT_TRUE(wrong_form.answer.effects.has_value());
  QueryResponse bad_text = engine_->Answer(QueryRequest(std::string("nope")));
  EXPECT_FALSE(bad_text.status.ok());
  EXPECT_EQ(bad_text.status.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(engine_->Answer("nope").ok());
}

TEST_F(EngineToyTest, BootstrapAttachesErrors) {
  EngineOptions options;
  options.bootstrap_replicates = 50;
  Result<QueryAnswer> answer =
      engine_->Answer("AVG_Score[A] <= Prestige[A]?", options);
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(std::isfinite(answer->ate->ate.std_error));
  EXPECT_EQ(answer->ate->ate.samples.size() +
                /*failed replicates are allowed*/ 0u,
            answer->ate->ate.samples.size());
  EXPECT_LE(answer->ate->ate.ci_low, answer->ate->ate.ci_high);
}

TEST_F(EngineToyTest, CriterionCheckRuns) {
  EngineOptions options;
  options.check_criterion = true;
  Result<QueryAnswer> answer =
      engine_->Answer("AVG_Score[A] <= Prestige[A]?", options);
  ASSERT_TRUE(answer.ok());
  ASSERT_TRUE(answer->ate->criterion_ok.has_value());
  EXPECT_TRUE(*answer->ate->criterion_ok);
}

TEST_F(EngineToyTest, UnknownAttributesRejected) {
  EXPECT_FALSE(engine_->Answer("Ghost[A] <= Prestige[A]?").ok());
  EXPECT_FALSE(engine_->Answer("AVG_Score[A] <= Ghost[A]?").ok());
  EXPECT_FALSE(engine_->Answer("AVG_Ghost[A] <= Prestige[A]?").ok());
}

TEST_F(EngineToyTest, AggregateShorthandOverOwnPredicateRejected) {
  // AVG_Qualification over Person while treatment is also on Person:
  // ill-defined self-aggregation.
  EXPECT_FALSE(engine_->Answer("AVG_Qualification[A] <= Prestige[A]?").ok());
}

TEST_F(EngineToyTest, UnitTableExposedForQueries) {
  Result<CausalQuery> query = ParseQuery("AVG_Score[A] <= Prestige[A]?");
  ASSERT_TRUE(query.ok());
  Result<UnitTable> table = engine_->BuildUnitTableForQuery(*query);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->data.num_rows(), 3u);
  EXPECT_TRUE(table->data.HasColumn("peer_t_mean"));
}

TEST_F(EngineToyTest, EstimatorVariantsRun) {
  // The toy's 3 units are too few for propensity estimators to say much,
  // but they must run or fail cleanly (never crash).
  for (EstimatorKind kind :
       {EstimatorKind::kRegression, EstimatorKind::kMatching,
        EstimatorKind::kIpw, EstimatorKind::kStratification}) {
    EngineOptions options;
    options.estimator = kind;
    Result<QueryAnswer> answer =
        engine_->Answer("AVG_Score[A] <= Prestige[A]?", options);
    if (answer.ok()) {
      EXPECT_TRUE(std::isfinite(answer->ate->ate.value));
    }
  }
}

TEST_F(EngineToyTest, MedianUnificationAggregate) {
  EngineOptions options;
  options.unification_aggregate = AggregateKind::kMedian;
  Result<QueryAnswer> answer =
      engine_->Answer("Score[S] <= Prestige[A]?", options);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->ate->response_attribute, "MEDIAN_Score_unified");
}

}  // namespace
}  // namespace carl
