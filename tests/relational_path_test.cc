// Tests for relational paths (Def 4.2) and the derived unifying
// aggregation (§4.3, rule (21)).

#include <gtest/gtest.h>

#include "core/causal_model.h"
#include "core/relational_path.h"
#include "datagen/review_toy.h"

namespace carl {
namespace {

class RelationalPathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<datagen::Dataset> data = datagen::MakeReviewToy();
    CARL_CHECK_OK(data.status());
    data_ = std::move(*data);
  }
  const Schema& schema() { return *data_.schema; }
  datagen::Dataset data_;
};

TEST_F(RelationalPathTest, DirectNeighbour) {
  PredicateId person = *schema().FindPredicate("Person");
  PredicateId submission = *schema().FindPredicate("Submission");
  Result<std::vector<PredicateId>> path =
      FindRelationalPath(schema(), person, submission);
  ASSERT_TRUE(path.ok());
  // Person - Author - Submission.
  ASSERT_EQ(path->size(), 3u);
  EXPECT_EQ(schema().predicate((*path)[1]).name, "Author");
}

TEST_F(RelationalPathTest, TwoHops) {
  PredicateId person = *schema().FindPredicate("Person");
  PredicateId conference = *schema().FindPredicate("Conference");
  Result<std::vector<PredicateId>> path =
      FindRelationalPath(schema(), person, conference);
  ASSERT_TRUE(path.ok());
  // Person - Author - Submission - Submitted - Conference.
  ASSERT_EQ(path->size(), 5u);
  EXPECT_EQ(schema().predicate((*path)[3]).name, "Submitted");
}

TEST_F(RelationalPathTest, SelfPathTrivial) {
  PredicateId person = *schema().FindPredicate("Person");
  Result<std::vector<PredicateId>> path =
      FindRelationalPath(schema(), person, person);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->size(), 1u);
}

TEST_F(RelationalPathTest, DisconnectedFails) {
  Schema isolated;
  CARL_CHECK_OK(isolated.AddEntity("A").status());
  CARL_CHECK_OK(isolated.AddEntity("B").status());
  Result<std::vector<PredicateId>> path = FindRelationalPath(
      isolated, *isolated.FindPredicate("A"), *isolated.FindPredicate("B"));
  EXPECT_FALSE(path.ok());
  EXPECT_EQ(path.status().code(), StatusCode::kNotFound);
}

TEST_F(RelationalPathTest, DeriveUnifyingRuleOneHop) {
  // The paper's example: Prestige[A] + Score[S] -> rule (12)-shaped
  // aggregation AVG_Score_unified[A] <= Score[S] WHERE Author(A, S).
  AttributeRef treatment{"Prestige", {Term::Var("A")}};
  AttributeRef response{"Score", {Term::Var("S")}};
  Result<AggregateRule> rule = DeriveUnifyingAggregateRule(
      schema(), treatment, response, AggregateKind::kAvg);
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->head.attribute, "AVG_Score_unified");
  EXPECT_EQ(rule->head.args[0].text, "A");
  EXPECT_EQ(rule->source.attribute, "Score");
  ASSERT_EQ(rule->where.atoms.size(), 1u);
  EXPECT_EQ(rule->where.atoms[0].predicate, "Author");
  EXPECT_EQ(rule->where.atoms[0].args[0].text, "A");
  EXPECT_EQ(rule->where.atoms[0].args[1].text, "S");

  // The derived rule validates against the schema.
  Program program;
  program.aggregate_rules.push_back(*rule);
  EXPECT_TRUE(RelationalCausalModel::Create(schema(), program).ok());
}

TEST_F(RelationalPathTest, DeriveUnifyingRuleTwoHops) {
  // Blind[C] as treatment, Score[S] as response: path through Submitted.
  AttributeRef treatment{"Blind", {Term::Var("C")}};
  AttributeRef response{"Score", {Term::Var("S")}};
  Result<AggregateRule> rule = DeriveUnifyingAggregateRule(
      schema(), treatment, response, AggregateKind::kMedian);
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->head.attribute, "MEDIAN_Score_unified");
  ASSERT_EQ(rule->where.atoms.size(), 1u);
  EXPECT_EQ(rule->where.atoms[0].predicate, "Submitted");
  // Submitted(Submission, Conference): S first, C second.
  EXPECT_EQ(rule->where.atoms[0].args[0].text, "S");
  EXPECT_EQ(rule->where.atoms[0].args[1].text, "C");
}

TEST_F(RelationalPathTest, DeriveLongPathUsesFreshVars) {
  // Prestige[A] (Person) to Blind[C] (Conference): two relationships with
  // a fresh intermediate Submission variable.
  AttributeRef treatment{"Prestige", {Term::Var("A")}};
  AttributeRef response{"Blind", {Term::Var("C")}};
  Result<AggregateRule> rule = DeriveUnifyingAggregateRule(
      schema(), treatment, response, AggregateKind::kAvg);
  ASSERT_TRUE(rule.ok());
  ASSERT_EQ(rule->where.atoms.size(), 2u);
  // The Author and Submitted atoms share the fresh Submission variable.
  const Atom& author = rule->where.atoms[0];
  const Atom& submitted = rule->where.atoms[1];
  EXPECT_EQ(author.predicate, "Author");
  EXPECT_EQ(submitted.predicate, "Submitted");
  EXPECT_EQ(author.args[1].text, submitted.args[0].text);
}

TEST_F(RelationalPathTest, SamePredicateRejected) {
  AttributeRef treatment{"Prestige", {Term::Var("A")}};
  AttributeRef response{"Qualification", {Term::Var("A")}};
  EXPECT_FALSE(DeriveUnifyingAggregateRule(schema(), treatment, response,
                                           AggregateKind::kAvg)
                   .ok());
}

}  // namespace
}  // namespace carl
