// Tests for the columnar relation storage: arena-backed Rows views, the
// row-id fact set, row-keyed attribute columns, and the CSR Match
// indexes. Covers exact-semantics equivalence with the historical
// per-row-vector layout (insertion order, dedupe, attribute lookup) on
// the real generators, plus a property test hammering Match with random
// position masks against a naive scan oracle.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.h"
#include "datagen/mimic.h"
#include "datagen/review_toy.h"
#include "fixtures.h"
#include "relational/evaluator.h"
#include "relational/instance.h"
#include "relational/schema.h"

namespace carl {
namespace {

using test_fixtures::MakePersonItemSchema;

// Reference implementation: linear scan over the arena rows.
std::vector<uint32_t> NaiveMatch(const Instance& db, PredicateId pid,
                                 const std::vector<int>& positions,
                                 const Tuple& key) {
  std::vector<uint32_t> out;
  RelationView rows = db.Rows(pid);
  for (uint32_t r = 0; r < rows.size(); ++r) {
    bool ok = true;
    for (size_t i = 0; i < positions.size(); ++i) {
      if (rows[r][positions[i]] != key[i]) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(r);
  }
  return out;
}

TEST(StorageTest, RowsPreserveInsertionOrderAndDedupe) {
  Schema schema = MakePersonItemSchema();
  Instance db(&schema);
  CARL_CHECK_OK(db.AddFact("Owns", {"bob", "car"}));
  CARL_CHECK_OK(db.AddFact("Owns", {"eva", "car"}));
  CARL_CHECK_OK(db.AddFact("Owns", {"bob", "car"}));  // duplicate
  CARL_CHECK_OK(db.AddFact("Owns", {"bob", "bike"}));

  PredicateId owns = *schema.FindPredicate("Owns");
  RelationView rows = db.Rows(owns);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows.arity(), 2u);
  SymbolId bob = db.LookupConstant("bob");
  SymbolId eva = db.LookupConstant("eva");
  SymbolId car = db.LookupConstant("car");
  SymbolId bike = db.LookupConstant("bike");
  EXPECT_EQ(rows[0].ToTuple(), (Tuple{bob, car}));
  EXPECT_EQ(rows[1].ToTuple(), (Tuple{eva, car}));
  EXPECT_EQ(rows[2].ToTuple(), (Tuple{bob, bike}));
  EXPECT_EQ(db.TotalFacts(), 3u);

  // Row lookup agrees with insertion order; misses report kNoRow.
  SymbolId probe[2] = {eva, car};
  EXPECT_EQ(db.FindRow(owns, probe, 2), 1u);
  SymbolId miss[2] = {eva, bike};
  EXPECT_EQ(db.FindRow(owns, miss, 2), Instance::kNoRow);
}

TEST(StorageTest, AttributeColumnsMatchMapSemantics) {
  Schema schema = MakePersonItemSchema();
  Instance db(&schema);
  CARL_CHECK_OK(db.AddFact("Person", {"bob"}));
  CARL_CHECK_OK(db.AddFact("Person", {"eva"}));
  AttributeId age = *schema.FindAttribute("Age");
  Tuple bob{db.LookupConstant("bob")};
  Tuple eva{db.LookupConstant("eva")};

  EXPECT_FALSE(db.GetAttribute(age, bob).has_value());
  CARL_CHECK_OK(db.SetAttributeIds(age, bob, Value(41.0)));
  CARL_CHECK_OK(db.SetAttributeIds(age, eva, Value(39.0)));
  EXPECT_EQ(db.NumAttributeValues(age), 2u);
  EXPECT_DOUBLE_EQ(db.GetAttribute(age, bob)->AsDouble(), 41.0);

  // In-place overwrite keeps one entry and bumps the generation.
  uint64_t gen = db.generation();
  CARL_CHECK_OK(db.SetAttributeIds(age, bob, Value(42.0)));
  EXPECT_GT(db.generation(), gen);
  EXPECT_EQ(db.NumAttributeValues(age), 2u);
  EXPECT_DOUBLE_EQ(db.GetAttribute(age, bob)->AsDouble(), 42.0);

  // Entries come back in insertion order.
  auto entries = db.AttributeEntries(age);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].first, bob);
  EXPECT_DOUBLE_EQ(entries[0].second.AsDouble(), 42.0);
  EXPECT_EQ(entries[1].first, eva);

  // Wrong arity probes miss instead of dying.
  EXPECT_FALSE(db.GetAttribute(age, {bob[0], eva[0]}).has_value());
}

TEST(StorageTest, AttributeSetBeforeFactSurvivesViaOverflow) {
  Schema schema = MakePersonItemSchema();
  Instance db(&schema);
  AttributeId age = *schema.FindAttribute("Age");
  // Value written before the fact exists: stored, readable, counted once.
  CARL_CHECK_OK(db.SetAttribute("Age", {"ghost"}, Value(7.0)));
  Tuple ghost{db.LookupConstant("ghost")};
  EXPECT_DOUBLE_EQ(db.GetAttribute(age, ghost)->AsDouble(), 7.0);
  EXPECT_EQ(db.NumAttributeValues(age), 1u);

  // The fact arrives later; the value is still visible, and a row-keyed
  // overwrite supersedes the early entry without double-counting.
  CARL_CHECK_OK(db.AddFact("Person", {"ghost"}));
  EXPECT_DOUBLE_EQ(db.GetAttribute(age, ghost)->AsDouble(), 7.0);
  CARL_CHECK_OK(db.SetAttributeIds(age, ghost, Value(8.0)));
  EXPECT_DOUBLE_EQ(db.GetAttribute(age, ghost)->AsDouble(), 8.0);
  EXPECT_EQ(db.NumAttributeValues(age), 1u);
}

TEST(StorageTest, NumericColumnMirrorsAttributeWrites) {
  Schema schema = MakePersonItemSchema();
  Instance db(&schema);
  CARL_CHECK_OK(db.AddFact("Person", {"bob"}));
  CARL_CHECK_OK(db.AddFact("Person", {"eva"}));
  CARL_CHECK_OK(db.AddFact("Person", {"ann"}));
  AttributeId age = *schema.FindAttribute("Age");

  // Untouched attribute: an empty, overflow-free column.
  Instance::NumericColumn col = db.NumericColumnOf(age);
  EXPECT_EQ(col.num_rows, 0u);
  EXPECT_FALSE(col.may_overflow);

  // Row-keyed writes land in the typed column at their row id; the gap
  // (eva, row 1) stays absent.
  CARL_CHECK_OK(db.SetAttribute("Age", {"bob"}, Value(41.0)));
  CARL_CHECK_OK(db.SetAttribute("Age", {"ann"}, Value(29.0)));
  col = db.NumericColumnOf(age);
  ASSERT_EQ(col.num_rows, 3u);
  EXPECT_EQ(col.present[0], 1);
  EXPECT_EQ(col.present[1], 0);
  EXPECT_EQ(col.present[2], 1);
  EXPECT_DOUBLE_EQ(col.values[0], 41.0);
  EXPECT_DOUBLE_EQ(col.values[2], 29.0);

  // In-place overwrite updates the typed shadow too.
  CARL_CHECK_OK(db.SetAttribute("Age", {"bob"}, Value(42.0)));
  col = db.NumericColumnOf(age);
  EXPECT_DOUBLE_EQ(col.values[0], 42.0);

  // A non-numeric value is "set" in the Value column but absent from the
  // typed one (NodeValue semantics: non-numeric reads as missing).
  CARL_CHECK_OK(db.SetAttribute("Age", {"eva"}, Value("unknown")));
  col = db.NumericColumnOf(age);
  EXPECT_EQ(col.present[1], 0);
}

TEST(StorageTest, OverflowAttributeRoundTripsThroughTypedColumns) {
  // A value set before its fact exists lives in the overflow map, not the
  // row-keyed column — even after the fact arrives. The typed column must
  // advertise that (may_overflow), and the grounding value pass must fall
  // back to FindAttributeValue for such rows instead of reading "absent"
  // off the column.
  Schema schema = MakePersonItemSchema();
  Instance db(&schema);
  CARL_CHECK_OK(db.AddFact("Person", {"bob"}));
  AttributeId age = *schema.FindAttribute("Age");
  CARL_CHECK_OK(db.SetAttribute("Age", {"ghost"}, Value(7.0)));  // no fact yet
  CARL_CHECK_OK(db.AddFact("Person", {"ghost"}));  // fact arrives later

  Instance::NumericColumn col = db.NumericColumnOf(age);
  EXPECT_TRUE(col.may_overflow);
  uint32_t ghost_row = db.FindRow(
      *schema.FindPredicate("Person"),
      Tuple{db.LookupConstant("ghost")}.data(), 1);
  ASSERT_NE(ghost_row, Instance::kNoRow);
  // The column itself has no row-keyed entry for ghost...
  EXPECT_TRUE(col.num_rows <= ghost_row || col.present[ghost_row] == 0);
  // ...but the full lookup still finds the overflow value.
  Tuple ghost{db.LookupConstant("ghost")};
  const Value* v = db.FindAttributeValue(age, ghost.data(), 1);
  ASSERT_NE(v, nullptr);
  EXPECT_DOUBLE_EQ(v->AsDouble(), 7.0);

  // A row-keyed overwrite supersedes the overflow entry and the column
  // becomes authoritative again.
  CARL_CHECK_OK(db.SetAttribute("Age", {"ghost"}, Value(8.0)));
  col = db.NumericColumnOf(age);
  EXPECT_FALSE(col.may_overflow);
  ASSERT_GT(col.num_rows, ghost_row);
  EXPECT_EQ(col.present[ghost_row], 1);
  EXPECT_DOUBLE_EQ(col.values[ghost_row], 8.0);
}

TEST(StorageTest, MatchMatchesNaiveScanUnderRandomMasks) {
  Schema schema = MakePersonItemSchema();
  Rng rng(4242);
  for (int trial = 0; trial < 20; ++trial) {
    Instance db(&schema);
    PredicateId owns = *schema.FindPredicate("Owns");
    // Small constant domain so keys collide and duplicates occur.
    std::vector<std::string> people{"a", "b", "c", "d"};
    std::vector<std::string> items{"x", "y", "z"};
    size_t facts = 5 + static_cast<size_t>(rng.UniformInt(0, 40));
    for (size_t f = 0; f < facts; ++f) {
      const std::string& p =
          people[static_cast<size_t>(rng.UniformInt(0, 3))];
      const std::string& i = items[static_cast<size_t>(rng.UniformInt(0, 2))];
      CARL_CHECK_OK(db.AddFact("Owns", {p, i}));
    }

    // Every mask over a 2-ary predicate, probed with seen and unseen keys.
    std::vector<std::vector<int>> masks{{}, {0}, {1}, {0, 1}, {1, 0}};
    for (const std::vector<int>& mask : masks) {
      for (int probe = 0; probe < 12; ++probe) {
        Tuple key;
        for (size_t i = 0; i < mask.size(); ++i) {
          // Mostly in-domain ids, sometimes unseen ones.
          key.push_back(rng.Bernoulli(0.85)
                            ? db.LookupConstant(
                                  people[static_cast<size_t>(
                                      rng.UniformInt(0, 3))])
                            : static_cast<SymbolId>(9999 + probe));
        }
        RowIdSpan got = db.Match(owns, mask, key);
        std::vector<uint32_t> expected = NaiveMatch(db, owns, mask, key);
        ASSERT_EQ(std::vector<uint32_t>(got.begin(), got.end()), expected)
            << "trial " << trial;
      }
    }

    // Inserting more facts invalidates and rebuilds the index correctly.
    CARL_CHECK_OK(db.AddFact("Owns", {"d", "z"}));
    Tuple key{db.LookupConstant("d")};
    RowIdSpan got = db.Match(owns, {0}, key);
    EXPECT_EQ(std::vector<uint32_t>(got.begin(), got.end()),
              NaiveMatch(db, owns, {0}, key));
  }
}

// The generators exercise the storage at scale: every row must be
// findable, dense, and dedupe-consistent; attribute entries must agree
// with point lookups.
void CheckStorageInvariants(const Instance& db) {
  const Schema& schema = db.schema();
  for (size_t p = 0; p < schema.num_predicates(); ++p) {
    PredicateId pid = static_cast<PredicateId>(p);
    RelationView rows = db.Rows(pid);
    for (uint32_t r = 0; r < rows.size(); ++r) {
      TupleView row = rows[r];
      ASSERT_EQ(db.FindRow(pid, row.data(), row.size()), r);
      // The full-positions index maps each row to exactly itself.
      std::vector<int> all_positions;
      for (size_t i = 0; i < rows.arity(); ++i) {
        all_positions.push_back(static_cast<int>(i));
      }
      RowIdSpan self = db.Match(pid, all_positions, row.ToTuple());
      ASSERT_EQ(self.size(), 1u);
      ASSERT_EQ(self[0], r);
    }
  }
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    AttributeId aid = static_cast<AttributeId>(a);
    for (const auto& [tuple, value] : db.AttributeEntries(aid)) {
      std::optional<Value> got = db.GetAttribute(aid, tuple);
      ASSERT_TRUE(got.has_value());
      ASSERT_EQ(*got, value);
    }
  }
}

TEST(StorageTest, ReviewToyGeneratorInvariants) {
  Result<datagen::Dataset> data = datagen::MakeReviewToy();
  ASSERT_TRUE(data.ok());
  CheckStorageInvariants(*data->instance);
}

TEST(StorageTest, MimicGeneratorInvariants) {
  datagen::MimicConfig config;
  config.num_patients = 400;
  config.num_caregivers = 20;
  Result<datagen::Dataset> data = datagen::GenerateMimic(config);
  ASSERT_TRUE(data.ok());
  CheckStorageInvariants(*data->instance);
}

TEST(StorageTest, PreparedQueryReuseAndShardConcatenation) {
  datagen::MimicConfig config;
  config.num_patients = 300;
  config.num_caregivers = 15;
  Result<datagen::Dataset> data = datagen::GenerateMimic(config);
  ASSERT_TRUE(data.ok());
  const Instance& db = *data->instance;
  QueryEvaluator evaluator(&db);

  ConjunctiveQuery q;
  q.atoms.push_back({"Care", {Term::Var("C"), Term::Var("P")}});
  q.atoms.push_back({"Given", {Term::Var("D"), Term::Var("P")}});
  std::vector<std::string> out_vars{"P", "D"};

  Result<PreparedQuery> prepared = evaluator.Prepare(q);
  ASSERT_TRUE(prepared.ok());
  Result<BindingTable> full = evaluator.Evaluate(*prepared, out_vars);
  ASSERT_TRUE(full.ok());
  Result<BindingTable> again = evaluator.Evaluate(q, out_vars);
  ASSERT_TRUE(again.ok());
  // The plan is reusable and deterministic.
  EXPECT_EQ(full->ToTuples(), again->ToTuples());

  // Streaming shards of the shared plan through first-occurrence dedupe
  // (both the legacy owned-Tuple way and the columnar InsertDistinct way)
  // reproduces the unsharded enumeration exactly.
  for (size_t num_shards : {1u, 2u, 3u, 7u}) {
    std::vector<Tuple> merged;
    std::set<Tuple> seen;
    BindingTable streamed(out_vars.size());
    for (size_t s = 0; s < num_shards; ++s) {
      Result<BindingTable> shard =
          evaluator.EvaluateShard(*prepared, out_vars, s, num_shards);
      ASSERT_TRUE(shard.ok());
      for (size_t r = 0; r < shard->size(); ++r) {
        streamed.InsertDistinct(shard->row(r));
        Tuple t = shard->row(r).ToTuple();
        if (seen.insert(t).second) merged.push_back(std::move(t));
      }
    }
    EXPECT_EQ(merged, full->ToTuples()) << num_shards << " shards";
    EXPECT_EQ(streamed.ToTuples(), full->ToTuples())
        << num_shards << " shards (columnar merge)";
  }
}

}  // namespace
}  // namespace carl
