// Tests for the schema declaration format.

#include <gtest/gtest.h>

#include "relational/schema_parser.h"

namespace carl {
namespace {

constexpr char kReviewSchema[] = R"(
  # REVIEWDATA (paper Example 3.1)
  entity Person
  entity Submission
  entity Conference
  relationship Author(Person, Submission)
  relationship Submitted(Submission, Conference)
  attribute Prestige of Person : bool
  attribute Qualification of Person
  attribute Score of Submission : double
  latent Quality of Submission : double
  attribute Blind of Conference : bool
)";

TEST(SchemaParserTest, ParsesFullDeclaration) {
  Result<Schema> schema = ParseSchema(kReviewSchema);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_predicates(), 5u);
  EXPECT_EQ(schema->num_attributes(), 5u);
  const AttributeDef& prestige =
      schema->attribute(*schema->FindAttribute("Prestige"));
  EXPECT_EQ(prestige.type, ValueType::kBool);
  EXPECT_TRUE(prestige.observed);
  const AttributeDef& quality =
      schema->attribute(*schema->FindAttribute("Quality"));
  EXPECT_FALSE(quality.observed);
  // Default type is double.
  EXPECT_EQ(schema->attribute(*schema->FindAttribute("Qualification")).type,
            ValueType::kDouble);
  const Predicate& author =
      schema->predicate(*schema->FindPredicate("Author"));
  EXPECT_EQ(author.arg_entities,
            (std::vector<std::string>{"Person", "Submission"}));
}

TEST(SchemaParserTest, RoundTripsThroughFormat) {
  Result<Schema> schema = ParseSchema(kReviewSchema);
  ASSERT_TRUE(schema.ok());
  std::string formatted = FormatSchema(*schema);
  Result<Schema> again = ParseSchema(formatted);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(FormatSchema(*again), formatted);
}

TEST(SchemaParserTest, ErrorsCarryLineNumbers) {
  Result<Schema> bad = ParseSchema("entity A\nnonsense B\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos);
}

TEST(SchemaParserTest, RejectsMalformedDeclarations) {
  EXPECT_FALSE(ParseSchema("").ok());
  EXPECT_FALSE(ParseSchema("# only comments\n").ok());
  EXPECT_FALSE(ParseSchema("entity\n").ok());
  EXPECT_FALSE(ParseSchema("relationship R(A B)\nentity A\n").ok());
  EXPECT_FALSE(ParseSchema("entity A\nrelationship R(A)\n").ok());
  EXPECT_FALSE(ParseSchema("entity A\nattribute X of A : quaternion\n").ok());
  EXPECT_FALSE(ParseSchema("entity A\nattribute X on A\n").ok());
  EXPECT_FALSE(ParseSchema("entity A\nentity A\n").ok());
  EXPECT_FALSE(
      ParseSchema("entity A\nrelationship R(A, Missing)\n").ok());
}

TEST(SchemaParserTest, CommentsAndWhitespaceTolerated) {
  Result<Schema> schema = ParseSchema(
      "  entity   A   # trailing comment\n\n\t# whole-line comment\n"
      "attribute X of A:int\n");
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->attribute(*schema->FindAttribute("X")).type,
            ValueType::kInt);
}

}  // namespace
}  // namespace carl
