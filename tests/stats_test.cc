// Tests for src/stats: descriptive statistics, OLS, logistic/IRLS,
// matching, IPW, stratification, bootstrap — on analytic fixtures and on
// generated confounded data where the true effect is known.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "relational/flat_table.h"
#include "stats/bootstrap.h"
#include "stats/descriptive.h"
#include "stats/ipw.h"
#include "stats/logistic.h"
#include "stats/matching.h"
#include "stats/ols.h"
#include "stats/stratification.h"

namespace carl {
namespace {

TEST(DescriptiveTest, MeanVarianceQuantile) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Mean(v), 3.0);
  EXPECT_DOUBLE_EQ(SampleVariance(v), 2.5);
  EXPECT_DOUBLE_EQ(StdDev(v), std::sqrt(2.5));
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Quantile({4, 1}, 0.5), 2.5);
}

TEST(DescriptiveTest, PearsonCorrelation) {
  Result<double> perfect = PearsonCorrelation({1, 2, 3}, {2, 4, 6});
  ASSERT_TRUE(perfect.ok());
  EXPECT_NEAR(*perfect, 1.0, 1e-12);
  Result<double> inverse = PearsonCorrelation({1, 2, 3}, {3, 2, 1});
  EXPECT_NEAR(*inverse, -1.0, 1e-12);
  EXPECT_FALSE(PearsonCorrelation({1, 1, 1}, {1, 2, 3}).ok());
  EXPECT_FALSE(PearsonCorrelation({1, 2}, {1, 2, 3}).ok());
}

TEST(DescriptiveTest, MeansByGroup) {
  Result<GroupMeans> means =
      MeansByGroup({10, 20, 1, 2}, {1, 1, 0, 0});
  ASSERT_TRUE(means.ok());
  EXPECT_DOUBLE_EQ(means->treated_mean, 15.0);
  EXPECT_DOUBLE_EQ(means->control_mean, 1.5);
  EXPECT_DOUBLE_EQ(means->difference, 13.5);
  EXPECT_FALSE(MeansByGroup({1, 2}, {1, 1}).ok());
}

TEST(OlsTest, RecoversCoefficients) {
  // y = 1 + 2a - 3b with tiny noise.
  Rng rng(5);
  FlatTable t({"y", "a", "b"});
  for (int i = 0; i < 200; ++i) {
    double a = rng.Normal(), b = rng.Normal();
    t.AddRow({1 + 2 * a - 3 * b + rng.Normal(0, 0.01), a, b});
  }
  Result<OlsFit> fit = FitOls(t, "y", {"a", "b"});
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->CoefficientOr("(intercept)", 0), 1.0, 0.01);
  EXPECT_NEAR(fit->CoefficientOr("a", 0), 2.0, 0.01);
  EXPECT_NEAR(fit->CoefficientOr("b", 0), -3.0, 0.01);
  EXPECT_GT(fit->r_squared, 0.99);
  // Standard errors are finite and small.
  for (double se : fit->std_errors) {
    EXPECT_TRUE(std::isfinite(se));
    EXPECT_LT(se, 0.1);
  }
}

TEST(OlsTest, DropsConstantColumns) {
  FlatTable t({"y", "x", "const"});
  for (int i = 0; i < 10; ++i) {
    t.AddRow({static_cast<double>(i), static_cast<double>(i), 7.0});
  }
  Result<OlsFit> fit = FitOls(t, "y", {"x", "const"});
  ASSERT_TRUE(fit.ok());
  EXPECT_EQ(fit->dropped, (std::vector<std::string>{"const"}));
  EXPECT_FALSE(fit->Coefficient("const").ok());
  EXPECT_NEAR(fit->CoefficientOr("x", 0), 1.0, 1e-9);
}

TEST(OlsTest, ErrorsOnDegenerateInput) {
  FlatTable t({"y", "x"});
  t.AddRow({1, 1});
  EXPECT_FALSE(FitOls(t, "y", {"x"}).ok());  // one row
  FlatTable all_const({"y", "x"});
  all_const.AddRow({1, 2});
  all_const.AddRow({2, 2});
  Result<OlsFit> fit = FitOls(all_const, "y", {"x"});
  ASSERT_TRUE(fit.ok());  // intercept-only fit
  EXPECT_EQ(fit->names.size(), 1u);
  EXPECT_FALSE(FitOls(all_const, "y", {"x"}, /*add_intercept=*/false).ok());
  EXPECT_FALSE(FitOls(t, "nope", {"x"}).ok());
}

TEST(LogisticTest, RecoversCoefficients) {
  Rng rng(11);
  const size_t n = 4000;
  Matrix x(n, 2);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    x.At(i, 0) = 1.0;
    x.At(i, 1) = rng.Normal();
    double p = Sigmoid(-0.5 + 1.5 * x.At(i, 1));
    y[i] = rng.Bernoulli(p) ? 1.0 : 0.0;
  }
  Result<LogisticFit> fit = FitLogisticRaw(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_TRUE(fit->converged);
  EXPECT_NEAR(fit->coefficients[0], -0.5, 0.15);
  EXPECT_NEAR(fit->coefficients[1], 1.5, 0.15);
  EXPECT_LT(fit->log_likelihood, 0.0);
}

TEST(LogisticTest, RejectsNonBinaryOutcome) {
  Matrix x(3, 1, 1.0);
  EXPECT_FALSE(FitLogisticRaw(x, {0, 1, 2}).ok());
  EXPECT_FALSE(FitLogisticRaw(x, {0, 1}).ok());  // size mismatch
}

TEST(LogisticTest, SigmoidSymmetry) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(30) + Sigmoid(-30), 1.0, 1e-12);
  EXPECT_GT(Sigmoid(1), Sigmoid(-1));
}

TEST(LogisticTest, PropensityScoresClipped) {
  FlatTable t({"t", "x"});
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    double x = rng.Normal();
    t.AddRow({rng.Bernoulli(Sigmoid(4 * x)) ? 1.0 : 0.0, x});
  }
  Result<std::vector<double>> ps = PropensityScores(t, "t", {"x"}, 0.05);
  ASSERT_TRUE(ps.ok());
  for (double p : *ps) {
    EXPECT_GE(p, 0.05);
    EXPECT_LE(p, 0.95);
  }
}

// A confounded synthetic fixture shared by the adjustment estimators:
// t depends on a confounder z, y = tau*t + 2*z + noise. Naive contrast is
// badly biased; propensity adjustment on z must recover tau.
struct ConfoundedData {
  std::vector<double> y, t, ps_true;
  FlatTable table;
  double tau;
};

ConfoundedData MakeConfounded(double tau, size_t n, uint64_t seed) {
  Rng rng(seed);
  ConfoundedData d;
  d.tau = tau;
  d.table = FlatTable({"y", "t", "z"});
  for (size_t i = 0; i < n; ++i) {
    double z = rng.Normal();
    double p = Sigmoid(1.5 * z);
    double t = rng.Bernoulli(p) ? 1.0 : 0.0;
    double y = tau * t + 2.0 * z + rng.Normal(0, 0.3);
    d.y.push_back(y);
    d.t.push_back(t);
    d.ps_true.push_back(p);
    d.table.AddRow({y, t, z});
  }
  return d;
}

TEST(MatchingTest, RecoversEffectUnderConfounding) {
  ConfoundedData d = MakeConfounded(1.0, 6000, 21);
  Result<GroupMeans> naive = MeansByGroup(d.y, d.t);
  ASSERT_TRUE(naive.ok());
  EXPECT_GT(naive->difference, 2.0);  // heavily biased upward

  Result<std::vector<double>> ps =
      PropensityScores(d.table, "t", {"z"});
  ASSERT_TRUE(ps.ok());
  Result<MatchingResult> m = PropensityScoreMatchingAte(d.y, d.t, *ps);
  ASSERT_TRUE(m.ok());
  EXPECT_NEAR(m->ate, d.tau, 0.25);
  EXPECT_GT(m->n_treated, 0u);
  EXPECT_GT(m->n_control, 0u);
}

TEST(MatchingTest, CaliperDiscardsFarMatches) {
  // Controls live far away in propensity space for part of the range.
  std::vector<double> y{1, 2, 10, 11};
  std::vector<double> t{1, 1, 0, 0};
  std::vector<double> ps{0.9, 0.85, 0.1, 0.12};
  Result<MatchingResult> strict =
      PropensityScoreMatchingAte(y, t, ps, /*caliper=*/0.05);
  EXPECT_FALSE(strict.ok());  // nothing matches within the caliper
  Result<MatchingResult> loose = PropensityScoreMatchingAte(y, t, ps);
  ASSERT_TRUE(loose.ok());
  EXPECT_EQ(loose->unmatched, 0u);
}

TEST(MatchingTest, InputValidation) {
  EXPECT_FALSE(PropensityScoreMatchingAte({1}, {1}, {0.5}).ok());
  EXPECT_FALSE(PropensityScoreMatchingAte({1, 2}, {1, 1}, {0.5, 0.5}).ok());
  EXPECT_FALSE(PropensityScoreMatchingAte({1, 2}, {1}, {0.5}).ok());
}

TEST(IpwTest, RecoversEffectUnderConfounding) {
  ConfoundedData d = MakeConfounded(-0.5, 6000, 22);
  Result<std::vector<double>> ps =
      PropensityScores(d.table, "t", {"z"});
  ASSERT_TRUE(ps.ok());
  Result<double> ate = IpwAte(d.y, d.t, *ps);
  ASSERT_TRUE(ate.ok());
  EXPECT_NEAR(*ate, d.tau, 0.3);
}

TEST(IpwTest, RejectsDegeneratePropensity) {
  EXPECT_FALSE(IpwAte({1, 2}, {1, 0}, {1.0, 0.5}).ok());
  EXPECT_FALSE(IpwAte({1, 2}, {1, 1}, {0.5, 0.5}).ok());
}

TEST(StratificationTest, RecoversEffectUnderConfounding) {
  ConfoundedData d = MakeConfounded(2.0, 8000, 23);
  Result<std::vector<double>> ps =
      PropensityScores(d.table, "t", {"z"});
  ASSERT_TRUE(ps.ok());
  Result<StratifiedAteResult> ate = StratifiedAte(d.y, d.t, *ps, 10);
  ASSERT_TRUE(ate.ok());
  EXPECT_NEAR(ate->ate, d.tau, 0.35);
  EXPECT_GT(ate->used_strata, 5);
}

TEST(StratificationTest, SkipsOneGroupStrata) {
  // All treated units clustered at high propensity.
  std::vector<double> y{1, 1, 0, 0};
  std::vector<double> t{1, 1, 0, 0};
  std::vector<double> ps{0.9, 0.91, 0.1, 0.11};
  Result<StratifiedAteResult> r = StratifiedAte(y, t, ps, 2);
  EXPECT_FALSE(r.ok());  // no stratum with both groups
}

TEST(BootstrapTest, MeanOfMeanMatches) {
  std::vector<double> data{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  Result<BootstrapResult> b = Bootstrap(
      data.size(), 500, 9,
      [&](const std::vector<size_t>& idx) -> Result<double> {
        double s = 0;
        for (size_t i : idx) s += data[i];
        return s / static_cast<double>(idx.size());
      });
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(b->mean, 5.5, 0.15);
  EXPECT_GT(b->sd, 0.0);
  EXPECT_LT(b->ci_low, b->ci_high);
  EXPECT_EQ(b->samples.size(), 500u);
}

TEST(BootstrapTest, FailuresCountedNotFatal) {
  int calls = 0;
  Result<BootstrapResult> b = Bootstrap(
      4, 10, 1, [&](const std::vector<size_t>&) -> Result<double> {
        return (++calls % 2 == 0)
                   ? Result<double>(1.0)
                   : Result<double>(Status::FailedPrecondition("flaky"));
      });
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->failures, 5u);
  EXPECT_EQ(b->samples.size(), 5u);
}

TEST(BootstrapTest, AllFailuresIsError) {
  Result<BootstrapResult> b =
      Bootstrap(4, 5, 1, [](const std::vector<size_t>&) -> Result<double> {
        return Status::FailedPrecondition("always");
      });
  EXPECT_FALSE(b.ok());
}

TEST(BootstrapTest, HistogramSumsToOne) {
  Histogram h = MakeHistogram({1, 1, 2, 2, 3, 3, 10}, 5);
  ASSERT_EQ(h.centers.size(), 5u);
  double total = 0;
  for (double d : h.density) total += d;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_TRUE(MakeHistogram({}, 3).centers.empty());
}

}  // namespace
}  // namespace carl
