// Failure-injection and robustness tests: the engine must degrade
// gracefully under missing data, degenerate treatment assignments, and
// unusual peer conditions — counting drops rather than crashing, and
// returning actionable Status errors when estimation is impossible.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/engine.h"
#include "datagen/review.h"

namespace carl {
namespace {

datagen::ReviewConfig SmallConfig(uint64_t seed) {
  datagen::ReviewConfig config;
  config.num_authors = 300;
  config.num_institutions = 15;
  config.num_papers = 1500;
  config.num_venues = 4;
  config.single_blind_fraction = 1.0;
  config.seed = seed;
  return config;
}

class RobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<datagen::ReviewData> data =
        datagen::GenerateReviewData(SmallConfig(71));
    CARL_CHECK_OK(data.status());
    data_.emplace(std::move(*data));
  }

  std::unique_ptr<CarlEngine> MakeEngine() {
    Result<RelationalCausalModel> model = RelationalCausalModel::Parse(
        *data_->dataset.schema, data_->dataset.model_text);
    CARL_CHECK_OK(model.status());
    Result<std::unique_ptr<CarlEngine>> engine = CarlEngine::Create(
        data_->dataset.instance.get(), std::move(*model));
    CARL_CHECK_OK(engine.status());
    return std::move(*engine);
  }

  // Clears a fraction of one attribute's values by resetting them to null.
  void DeleteAttributeFraction(const std::string& attribute, double fraction,
                               uint64_t seed) {
    Instance& db = *data_->dataset.instance;
    AttributeId aid = *data_->dataset.schema->FindAttribute(attribute);
    Rng rng(seed);
    std::vector<Tuple> to_clear;
    for (const auto& [tuple, value] : db.AttributeEntries(aid)) {
      (void)value;
      if (rng.Bernoulli(fraction)) to_clear.push_back(tuple);
    }
    for (const Tuple& t : to_clear) {
      CARL_CHECK_OK(db.SetAttributeIds(aid, t, Value::Null()));
    }
  }

  std::optional<datagen::ReviewData> data_;
};

TEST_F(RobustnessTest, MissingResponsesAreDroppedNotFatal) {
  DeleteAttributeFraction("Score", 0.30, 5);
  std::unique_ptr<CarlEngine> engine = MakeEngine();
  Result<QueryAnswer> answer =
      engine->Answer("AVG_Score[A] <= Prestige[A]?");
  ASSERT_TRUE(answer.ok());
  // Authors whose every paper lost its score drop out; most remain, and
  // the estimate stays finite and in a sane range.
  EXPECT_GT(answer->ate->num_units, 100u);
  EXPECT_TRUE(std::isfinite(answer->ate->ate.value));
  EXPECT_LT(std::abs(answer->ate->ate.value), 5.0);
}

TEST_F(RobustnessTest, MissingTreatmentsDropUnits) {
  DeleteAttributeFraction("Prestige", 0.25, 6);
  std::unique_ptr<CarlEngine> engine = MakeEngine();
  Result<QueryAnswer> answer =
      engine->Answer("AVG_Score[A] <= Prestige[A]?");
  ASSERT_TRUE(answer.ok());
  EXPECT_GT(answer->ate->dropped_units, 30u);
  EXPECT_TRUE(std::isfinite(answer->ate->ate.value));
}

TEST_F(RobustnessTest, MissingCovariatesStillEstimable) {
  // Qualification is the detected confounder; deleting some of its values
  // shrinks the embedded covariate groups but must not kill the query.
  DeleteAttributeFraction("Qualification", 0.40, 7);
  std::unique_ptr<CarlEngine> engine = MakeEngine();
  Result<QueryAnswer> answer =
      engine->Answer("AVG_Score[A] <= Prestige[A]?");
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(std::isfinite(answer->ate->ate.value));
}

TEST_F(RobustnessTest, AllTreatedIsCleanError) {
  Instance& db = *data_->dataset.instance;
  AttributeId prestige = *data_->dataset.schema->FindAttribute("Prestige");
  std::vector<Tuple> units;
  for (const auto& [tuple, value] : db.AttributeEntries(prestige)) {
    (void)value;
    units.push_back(tuple);
  }
  for (const Tuple& t : units) {
    CARL_CHECK_OK(db.SetAttributeIds(prestige, t, Value(true)));
  }
  std::unique_ptr<CarlEngine> engine = MakeEngine();
  Result<QueryAnswer> answer =
      engine->Answer("AVG_Score[A] <= Prestige[A]?");
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(RobustnessTest, NonBinaryTreatmentIsCleanError) {
  Instance& db = *data_->dataset.instance;
  AttributeId prestige = *data_->dataset.schema->FindAttribute("Prestige");
  Tuple first = db.AttributeEntries(prestige).front().first;
  CARL_CHECK_OK(db.SetAttributeIds(prestige, first, Value(0.5)));
  std::unique_ptr<CarlEngine> engine = MakeEngine();
  Result<QueryAnswer> answer =
      engine->Answer("AVG_Score[A] <= Prestige[A]?");
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(answer.status().message().find("binary"), std::string::npos);
}

TEST_F(RobustnessTest, CountBasedPeerConditions) {
  std::unique_ptr<CarlEngine> engine = MakeEngine();
  for (const char* cond :
       {"AT LEAST 1", "AT MOST 2", "EXACTLY 1", "LESS THAN 50%"}) {
    std::string query = std::string(
        "AVG_Score[A] <= Prestige[A]? WHEN ") + cond + " PEERS TREATED";
    Result<QueryAnswer> answer = engine->Answer(query);
    ASSERT_TRUE(answer.ok()) << cond;
    EXPECT_TRUE(std::isfinite(answer->effects->are.value)) << cond;
    EXPECT_NEAR(answer->effects->aoe.value,
                answer->effects->aie.value + answer->effects->are.value,
                1e-9)
        << cond;
  }
}

TEST_F(RobustnessTest, IncludeIsolatedUnitsOption) {
  std::unique_ptr<CarlEngine> engine = MakeEngine();
  EngineOptions keep;
  keep.include_isolated_units = true;
  Result<QueryAnswer> with_isolated = engine->Answer(
      "AVG_Score[A] <= Prestige[A]? WHEN ALL PEERS TREATED", keep);
  EngineOptions drop;
  drop.include_isolated_units = false;
  Result<QueryAnswer> without_isolated = engine->Answer(
      "AVG_Score[A] <= Prestige[A]? WHEN ALL PEERS TREATED", drop);
  ASSERT_TRUE(with_isolated.ok());
  ASSERT_TRUE(without_isolated.ok());
  EXPECT_GE(with_isolated->effects->num_units,
            without_isolated->effects->num_units);
}

TEST_F(RobustnessTest, BootstrapSurvivesSmallStrata) {
  std::unique_ptr<CarlEngine> engine = MakeEngine();
  EngineOptions options;
  options.bootstrap_replicates = 60;
  options.estimator = EstimatorKind::kMatching;
  Result<QueryAnswer> answer =
      engine->Answer("AVG_Score[A] <= Prestige[A]?", options);
  // Matching may fail on individual resamples; the bootstrap reports that
  // via fewer samples rather than failing the query.
  if (answer.ok()) {
    EXPECT_LE(answer->ate->ate.samples.size(), 60u);
  }
}

TEST_F(RobustnessTest, DeterministicAcrossRuns) {
  std::unique_ptr<CarlEngine> engine1 = MakeEngine();
  std::unique_ptr<CarlEngine> engine2 = MakeEngine();
  Result<QueryAnswer> a1 = engine1->Answer("AVG_Score[A] <= Prestige[A]?");
  Result<QueryAnswer> a2 = engine2->Answer("AVG_Score[A] <= Prestige[A]?");
  ASSERT_TRUE(a1.ok() && a2.ok());
  EXPECT_DOUBLE_EQ(a1->ate->ate.value, a2->ate->ate.value);
  EXPECT_EQ(a1->ate->num_units, a2->ate->num_units);
}

}  // namespace
}  // namespace carl
