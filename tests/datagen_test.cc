// Generator shape guards: catch calibration drift in the simulated
// datasets (the Table 3 / Table 4 phenomena depend on these mechanisms).

#include <gtest/gtest.h>

#include "datagen/mimic.h"
#include "datagen/nis.h"
#include "datagen/review.h"
#include "datagen/review_toy.h"
#include "stats/descriptive.h"

namespace carl {
namespace {

std::vector<double> AttributeValues(const Instance& db,
                                    const std::string& attribute) {
  AttributeId aid = *db.schema().FindAttribute(attribute);
  std::vector<double> out;
  for (const auto& [tuple, value] : db.AttributeEntries(aid)) {
    (void)tuple;
    if (value.is_numeric()) out.push_back(value.AsDouble());
  }
  return out;
}

TEST(ReviewToyTest, MatchesFigure2Exactly) {
  Result<datagen::Dataset> data = datagen::MakeReviewToy();
  ASSERT_TRUE(data.ok());
  const Instance& db = *data->instance;
  const Schema& schema = *data->schema;
  EXPECT_EQ(db.NumRows(*schema.FindPredicate("Person")), 3u);
  EXPECT_EQ(db.NumRows(*schema.FindPredicate("Submission")), 3u);
  EXPECT_EQ(db.NumRows(*schema.FindPredicate("Author")), 5u);
  EXPECT_EQ(db.NumRows(*schema.FindPredicate("Submitted")), 3u);
  EXPECT_EQ(db.NumRows(*schema.FindPredicate("Conference")), 2u);
  AttributeId qual = *schema.FindAttribute("Qualification");
  EXPECT_DOUBLE_EQ(
      db.GetAttribute(qual, {db.LookupConstant("Bob")})->AsDouble(), 50.0);
}

TEST(MimicGeneratorTest, RatesAndMechanismsInRange) {
  datagen::MimicConfig config;
  config.num_patients = 8000;
  config.num_caregivers = 250;
  Result<datagen::Dataset> data = datagen::GenerateMimic(config);
  ASSERT_TRUE(data.ok());
  const Instance& db = *data->instance;

  std::vector<double> death = AttributeValues(db, "Death");
  std::vector<double> selfpay = AttributeValues(db, "SelfPay");
  std::vector<double> len = AttributeValues(db, "Len");
  ASSERT_EQ(death.size(), config.num_patients);
  // Base mortality around 10-16%, uninsured rate around 5-15%.
  EXPECT_GT(Mean(death), 0.06);
  EXPECT_LT(Mean(death), 0.22);
  EXPECT_GT(Mean(selfpay), 0.04);
  EXPECT_LT(Mean(selfpay), 0.20);
  // Stays are positive with a plausible ICU mean (days, in hours).
  EXPECT_GT(Mean(len), 120.0);
  EXPECT_LT(Mean(len), 400.0);

  // The deferred-admission confounding: self-payers are sicker (Diag).
  std::vector<double> diag = AttributeValues(db, "Diag");
  Result<GroupMeans> diag_by_pay = MeansByGroup(diag, selfpay);
  ASSERT_TRUE(diag_by_pay.ok());
  EXPECT_GT(diag_by_pay->difference, 0.05);

  // Every patient has a caregiver and at least one prescription.
  EXPECT_EQ(db.NumRows(*data->schema->FindPredicate("Care")),
            config.num_patients);
  EXPECT_GE(db.NumRows(*data->schema->FindPredicate("Given")),
            config.num_patients);
}

TEST(MimicGeneratorTest, PrescriptionSkewKnobConcentratesTheHotSlice) {
  datagen::MimicConfig base;
  base.num_patients = 2048;
  base.num_caregivers = 64;
  datagen::MimicConfig skewed = base;
  skewed.prescription_skew = 100;

  Result<datagen::Dataset> plain = datagen::GenerateMimic(base);
  ASSERT_TRUE(plain.ok());
  Result<datagen::Dataset> hot = datagen::GenerateMimic(skewed);
  ASSERT_TRUE(hot.ok());

  // skew=1 is the default: the knob must be a no-op there. (The default
  // config replays exactly — BENCH baselines depend on it.)
  Result<datagen::Dataset> plain2 = datagen::GenerateMimic(base);
  ASSERT_TRUE(plain2.ok());
  EXPECT_EQ(plain->instance->TotalFacts(), plain2->instance->TotalFacts());

  // The skewed run piles prescriptions onto the head-of-index slice: the
  // Prescription/Given/Drug relations dwarf the unskewed ones, while the
  // patient population is untouched.
  auto rows = [&](const datagen::Dataset& d, const char* pred) {
    return d.instance->NumRows(*d.schema->FindPredicate(pred));
  };
  EXPECT_EQ(rows(*hot, "Pa"), rows(*plain, "Pa"));
  EXPECT_GT(rows(*hot, "Prescription"), 2 * rows(*plain, "Prescription"))
      << "skew=100 did not materially grow the hot relation";
  EXPECT_GT(rows(*hot, "Given"), 2 * rows(*plain, "Given"));
}

TEST(NisGeneratorTest, RoutingAndBillingMechanisms) {
  datagen::NisConfig config;
  config.num_hospitals = 150;
  config.num_admissions = 10000;
  Result<datagen::Dataset> data = datagen::GenerateNis(config);
  ASSERT_TRUE(data.ok());
  const Instance& db = *data->instance;

  std::vector<double> to_large = AttributeValues(db, "AdmittedToLarge");
  std::vector<double> severity = AttributeValues(db, "Severity");
  std::vector<double> highbill = AttributeValues(db, "HighBill");
  // Severe patients are routed to large hospitals (the confounder).
  Result<GroupMeans> severity_by_routing =
      MeansByGroup(severity, to_large);
  ASSERT_TRUE(severity_by_routing.ok());
  EXPECT_GT(severity_by_routing->difference, 0.2);
  // High-bill rates near the paper's 64%/31% split.
  Result<GroupMeans> bill_by_routing = MeansByGroup(highbill, to_large);
  ASSERT_TRUE(bill_by_routing.ok());
  EXPECT_NEAR(bill_by_routing->treated_mean, 0.64, 0.08);
  EXPECT_NEAR(bill_by_routing->control_mean, 0.31, 0.08);
}

TEST(NisGeneratorTest, RejectsDegenerateHospitalMix) {
  datagen::NisConfig config;
  config.num_hospitals = 5;
  config.num_admissions = 10;
  config.large_fraction = 0.0;  // no large hospitals possible
  Result<datagen::Dataset> data = datagen::GenerateNis(config);
  EXPECT_FALSE(data.ok());
}

TEST(ReviewGeneratorTest, ConfoundingAndEffectsPresent) {
  datagen::ReviewConfig config;
  config.num_authors = 800;
  config.num_institutions = 40;
  config.num_papers = 4000;
  config.num_venues = 8;
  config.single_blind_fraction = 1.0;
  config.seed = 67;
  Result<datagen::ReviewData> data = datagen::GenerateReviewData(config);
  ASSERT_TRUE(data.ok());
  const Instance& db = *data->dataset.instance;

  std::vector<double> prestige = AttributeValues(db, "Prestige");
  std::vector<double> qual = AttributeValues(db, "Qualification");
  // Prestige is binary and neither empty nor saturated.
  double prestige_rate = Mean(prestige);
  EXPECT_GT(prestige_rate, 0.15);
  EXPECT_LT(prestige_rate, 0.85);
  // Qualification confounds prestige.
  Result<GroupMeans> qual_by_prestige = MeansByGroup(qual, prestige);
  ASSERT_TRUE(qual_by_prestige.ok());
  EXPECT_GT(qual_by_prestige->difference, 5.0);
  // Every paper has exactly one credited author (substitution note).
  EXPECT_EQ(db.NumRows(*data->dataset.schema->FindPredicate("Author")),
            config.num_papers);
  // Collaboration is symmetric.
  PredicateId collab = *data->dataset.schema->FindPredicate("Collaborator");
  for (size_t i = 0; i < std::min<size_t>(50, db.NumRows(collab)); ++i) {
    TupleView row = db.Rows(collab)[i];
    EXPECT_FALSE(db.Match(collab, {0, 1}, {row[1], row[0]}).empty());
  }
}

TEST(ReviewGeneratorTest, SeedChangesData) {
  datagen::ReviewConfig a;
  a.num_authors = 100;
  a.num_papers = 300;
  a.num_venues = 2;
  a.num_institutions = 5;
  a.seed = 1;
  datagen::ReviewConfig b = a;
  b.seed = 2;
  Result<datagen::ReviewData> da = datagen::GenerateReviewData(a);
  Result<datagen::ReviewData> db_ = datagen::GenerateReviewData(b);
  ASSERT_TRUE(da.ok() && db_.ok());
  std::vector<double> sa =
      AttributeValues(*da->dataset.instance, "Score");
  std::vector<double> sb =
      AttributeValues(*db_->dataset.instance, "Score");
  ASSERT_EQ(sa.size(), sb.size());
  EXPECT_NE(Mean(sa), Mean(sb));

  // Same seed reproduces identical data.
  Result<datagen::ReviewData> da2 = datagen::GenerateReviewData(a);
  ASSERT_TRUE(da2.ok());
  EXPECT_EQ(Mean(sa), Mean(AttributeValues(*da2->dataset.instance, "Score")));
}

}  // namespace
}  // namespace carl
