// Additional coverage: higher-arity relationships in paths and grounding,
// non-AVG aggregate rules end to end, universal tables with constraints
// and constants, and moment helpers.

#include <gtest/gtest.h>

#include "core/causal_model.h"
#include "core/grounding.h"
#include "core/relational_path.h"
#include "datagen/review_toy.h"
#include "relational/aggregates.h"
#include "relational/universal_table.h"

namespace carl {
namespace {

// A schema with a ternary relationship: Review(Referee, Submission, Round).
struct TernaryFixture {
  Schema schema;
  std::unique_ptr<Instance> db;

  TernaryFixture() {
    CARL_CHECK_OK(schema.AddEntity("Referee").status());
    CARL_CHECK_OK(schema.AddEntity("Submission").status());
    CARL_CHECK_OK(schema.AddEntity("Round").status());
    CARL_CHECK_OK(schema
                      .AddRelationship("Review",
                                       {"Referee", "Submission", "Round"})
                      .status());
    CARL_CHECK_OK(schema.AddAttribute("Harshness", "Referee").status());
    CARL_CHECK_OK(schema.AddAttribute("Grade", "Review").status());
    db = std::make_unique<Instance>(&schema);
    for (const char* r : {"r1", "r2"}) CARL_CHECK_OK(db->AddFact("Referee", {r}));
    for (const char* s : {"s1", "s2"}) {
      CARL_CHECK_OK(db->AddFact("Submission", {s}));
    }
    CARL_CHECK_OK(db->AddFact("Round", {"round1"}));
    CARL_CHECK_OK(db->AddFact("Review", {"r1", "s1", "round1"}));
    CARL_CHECK_OK(db->AddFact("Review", {"r2", "s1", "round1"}));
    CARL_CHECK_OK(db->AddFact("Review", {"r2", "s2", "round1"}));
    CARL_CHECK_OK(db->SetAttribute("Harshness", {"r1"}, Value(2.0)));
    CARL_CHECK_OK(db->SetAttribute("Harshness", {"r2"}, Value(5.0)));
    CARL_CHECK_OK(
        db->SetAttribute("Grade", {"r1", "s1", "round1"}, Value(3.0)));
    CARL_CHECK_OK(
        db->SetAttribute("Grade", {"r2", "s1", "round1"}, Value(1.0)));
    CARL_CHECK_OK(
        db->SetAttribute("Grade", {"r2", "s2", "round1"}, Value(4.0)));
  }
};

TEST(TernaryRelationshipTest, RelationshipAttachedAttributesGround) {
  TernaryFixture f;
  // Grade (a relationship attribute) depends on the referee's harshness.
  Result<RelationalCausalModel> model = RelationalCausalModel::Parse(
      f.schema, "Grade[R, S, T] <= Harshness[R] WHERE Review(R, S, T)");
  ASSERT_TRUE(model.ok());
  Result<GroundedModel> grounded = GroundModel(*f.db, *model);
  ASSERT_TRUE(grounded.ok());

  AttributeId grade = *f.schema.FindAttribute("Grade");
  Tuple key{f.db->LookupConstant("r2"), f.db->LookupConstant("s1"),
            f.db->LookupConstant("round1")};
  NodeId node = grounded->graph().FindNode(grade, key);
  ASSERT_NE(node, kInvalidNode);
  ASSERT_EQ(grounded->graph().Parents(node).size(), 1u);
  EXPECT_EQ(grounded->NodeName(grounded->graph().Parents(node)[0]),
            "Harshness[r2]");
  EXPECT_DOUBLE_EQ(*grounded->NodeValue(node), 1.0);
}

TEST(TernaryRelationshipTest, PathThroughTernaryRelationship) {
  TernaryFixture f;
  // Referee -> Review -> Submission: the relationship has a third (Round)
  // position that must become a fresh variable.
  AttributeRef treatment{"Harshness", {Term::Var("R")}};
  AttributeRef response{"Grade",
                        {Term::Var("R"), Term::Var("S"), Term::Var("T")}};
  Result<AggregateRule> rule = DeriveUnifyingAggregateRule(
      f.schema, treatment, response, AggregateKind::kAvg);
  ASSERT_TRUE(rule.ok());
  // The endpoint relationship atom carries the response's own variables.
  ASSERT_EQ(rule->where.atoms.size(), 1u);
  EXPECT_EQ(rule->where.atoms[0].predicate, "Review");
  EXPECT_EQ(rule->where.atoms[0].args[0].text, "R");

  // The derived rule validates and grounds: AVG grade per referee.
  Program program;
  program.aggregate_rules.push_back(*rule);
  Result<RelationalCausalModel> model =
      RelationalCausalModel::Create(f.schema, program);
  ASSERT_TRUE(model.ok());
  Result<GroundedModel> grounded = GroundModel(*f.db, *model);
  ASSERT_TRUE(grounded.ok());
  AttributeId avg =
      *model->extended_schema().FindAttribute("AVG_Grade_unified");
  NodeId r2 = grounded->graph().FindNode(
      avg, {f.db->LookupConstant("r2")});
  ASSERT_NE(r2, kInvalidNode);
  EXPECT_DOUBLE_EQ(*grounded->NodeValue(r2), (1.0 + 4.0) / 2.0);
}

TEST(AggregateKindsTest, CountAndVarianceRulesEndToEnd) {
  Result<datagen::Dataset> data = datagen::MakeReviewToy();
  CARL_CHECK_OK(data.status());
  Result<RelationalCausalModel> model = RelationalCausalModel::Parse(
      *data->schema,
      "COUNT_Score[A] <= Score[S] WHERE Author(A, S)\n"
      "VAR_Score[A] <= Score[S] WHERE Author(A, S)\n"
      "MAX_Score[A] <= Score[S] WHERE Author(A, S)");
  ASSERT_TRUE(model.ok());
  Result<GroundedModel> grounded = GroundModel(*data->instance, *model);
  ASSERT_TRUE(grounded.ok());

  auto value_for = [&](const std::string& attr, const char* who) {
    AttributeId aid = *model->extended_schema().FindAttribute(attr);
    NodeId node = grounded->graph().FindNode(
        aid, {data->instance->LookupConstant(who)});
    CARL_CHECK(node != kInvalidNode);
    return *grounded->NodeValue(node);
  };
  EXPECT_DOUBLE_EQ(value_for("COUNT_Score", "Eva"), 3.0);
  EXPECT_DOUBLE_EQ(value_for("COUNT_Score", "Bob"), 1.0);
  EXPECT_DOUBLE_EQ(value_for("MAX_Score", "Eva"), 0.75);
  // Population variance of {0.75, 0.4, 0.1}.
  double mean = (0.75 + 0.4 + 0.1) / 3.0;
  double var = ((0.75 - mean) * (0.75 - mean) + (0.4 - mean) * (0.4 - mean) +
                (0.1 - mean) * (0.1 - mean)) /
               3.0;
  EXPECT_NEAR(value_for("VAR_Score", "Eva"), var, 1e-12);
}

TEST(UniversalTableTest, ConstraintsAndConstantsInJoin) {
  Result<datagen::Dataset> data = datagen::MakeReviewToy();
  CARL_CHECK_OK(data.status());

  // Only rows at double-blind venues, for one fixed author.
  UniversalTableSpec spec;
  spec.join.atoms.push_back(
      {"Author", {Term::Const("Eva"), Term::Var("S")}});
  spec.join.atoms.push_back(
      {"Submitted", {Term::Var("S"), Term::Var("C")}});
  AttributeConstraint blind;
  blind.attribute = "Blind";
  blind.args = {Term::Var("C")};
  blind.op = CompareOp::kEq;
  blind.rhs = Value(false);
  spec.join.constraints.push_back(blind);
  spec.columns.push_back({"Score", {"S"}, "score"});
  Result<UniversalTableResult> result =
      BuildUniversalTable(*data->instance, spec);
  ASSERT_TRUE(result.ok());
  // Eva's double-blind submissions: s2 and s3.
  EXPECT_EQ(result->table.num_rows(), 2u);
}

TEST(MomentHelperTest, StandardizedMoments) {
  std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Moment(v, 1), 2.5);
  EXPECT_DOUBLE_EQ(Moment(v, 2), 1.25);
  // Fourth standardized moment (kurtosis, non-excess) of a symmetric
  // two-point mass {0,0,1,1} is 1.
  EXPECT_NEAR(Moment({0, 0, 1, 1}, 4), 1.0, 1e-12);
  // Degenerate inputs.
  EXPECT_DOUBLE_EQ(Moment({5}, 3), 0.0);
  EXPECT_DOUBLE_EQ(Moment({2, 2, 2}, 3), 0.0);
}

TEST(GroundingScaleTest, NodeAndEdgeCountsAreExact) {
  // On the toy: Score rule (7) contributes one edge per authorship (5);
  // rule (8) one per submission (3); Quality rule two body atoms per
  // authorship (10); Prestige rule one per person (3); AVG rule one per
  // authorship (5). Total distinct edges = 26.
  Result<datagen::Dataset> data = datagen::MakeReviewToy();
  CARL_CHECK_OK(data.status());
  Result<RelationalCausalModel> model =
      RelationalCausalModel::Parse(*data->schema, data->model_text);
  CARL_CHECK_OK(model.status());
  Result<GroundedModel> grounded = GroundModel(*data->instance, *model);
  ASSERT_TRUE(grounded.ok());
  EXPECT_EQ(grounded->graph().num_edges(), 26u);
  EXPECT_EQ(grounded->graph().num_nodes(), 17u);
}

}  // namespace
}  // namespace carl
