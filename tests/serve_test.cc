// carl_serve: the wire codec, the concurrent query service, and the TCP
// front door.
//
// The load-bearing assertions:
//  * answers served through the full encode -> submit -> wave -> encode
//    path are BIT-identical to direct CarlEngine calls (doubles compared
//    by bit pattern, so NaN std_error fields count too);
//  * an identical-query wave grounds exactly once — the followers
//    coalesce onto the leader's grounding (serve.wave_coalesced and
//    QuerySession ground_full prove it);
//  * a per-request deadline surfaces as a kDeadlineExceeded wire error
//    WITHOUT poisoning the shared session: the next request over the
//    same shard answers bit-identically to an undisturbed engine.
//
// This suite runs in the TSan CI leg: the service is exercised with
// many concurrent ServeDriver clients against multiple workers.

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "fixtures.h"
#include "serve/service.h"
#include "serve/tcp_server.h"

#define ASSERT_OK(expr) ASSERT_TRUE((expr).ok())

namespace carl {
namespace serve {
namespace {

using test_fixtures::MiniMimicDataset;
using test_fixtures::MiniNisDataset;

bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

#define EXPECT_BIT_EQ(a, b) \
  EXPECT_PRED2(BitEqual, (a), (b)) << #a " vs " #b

// Direct-engine reference answer for (dataset, query) with the engine
// defaults the wire path uses.
AteAnswer DirectAnswer(const datagen::Dataset& data,
                       const std::string& query) {
  Result<RelationalCausalModel> model =
      RelationalCausalModel::Parse(*data.schema, data.model_text);
  CARL_CHECK_OK(model.status());
  Result<std::unique_ptr<CarlEngine>> engine =
      CarlEngine::Create(data.instance.get(), std::move(model).ValueUnsafe());
  CARL_CHECK_OK(engine.status());
  QueryRequest request(query);
  QueryResponse response = (*engine)->Answer(request);
  CARL_CHECK_OK(response.status);
  CARL_CHECK(response.answer.ate.has_value());
  return *response.answer.ate;
}

void ExpectMatchesDirect(const ServeResponse& served, const AteAnswer& direct,
                         const std::string& query) {
  ASSERT_EQ(served.code, StatusCode::kOk)
      << query << ": " << served.message;
  ASSERT_EQ(served.kind, kAnswerAte) << query;
  EXPECT_BIT_EQ(served.ate.value, direct.ate.value);
  EXPECT_BIT_EQ(served.ate.std_error, direct.ate.std_error);
  EXPECT_BIT_EQ(served.ate.ci_low, direct.ate.ci_low);
  EXPECT_BIT_EQ(served.ate.ci_high, direct.ate.ci_high);
  EXPECT_BIT_EQ(served.naive_treated, direct.naive.treated_mean);
  EXPECT_BIT_EQ(served.naive_control, direct.naive.control_mean);
  EXPECT_BIT_EQ(served.naive_diff, direct.naive.difference);
  EXPECT_EQ(served.num_units, direct.num_units);
  EXPECT_EQ(served.dropped_units, direct.dropped_units);
  EXPECT_EQ(served.response_attribute, direct.response_attribute);
}

// ---------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------

TEST(WireTest, RequestRoundTrip) {
  ServeRequest request;
  request.request_id = 77;
  request.instance = "mimic";
  request.program = "Death[P] <= SelfPay[P] WHERE Patient(P)";
  request.query = "Death[P] <= SelfPay[P]?";
  request.deadline_ms = 12.5;
  request.memory_budget = 1 << 20;
  request.max_bindings = 999;
  request.bootstrap_replicates = 64;
  request.seed = 1234;

  ServeRequest decoded;
  ASSERT_OK(DecodeRequest(EncodeRequest(request), &decoded));
  EXPECT_EQ(decoded.request_id, request.request_id);
  EXPECT_EQ(decoded.instance, request.instance);
  EXPECT_EQ(decoded.program, request.program);
  EXPECT_EQ(decoded.query, request.query);
  EXPECT_BIT_EQ(decoded.deadline_ms, request.deadline_ms);
  EXPECT_EQ(decoded.memory_budget, request.memory_budget);
  EXPECT_EQ(decoded.max_bindings, request.max_bindings);
  EXPECT_EQ(decoded.bootstrap_replicates, request.bootstrap_replicates);
  EXPECT_EQ(decoded.seed, request.seed);
}

TEST(WireTest, ResponseRoundTripPreservesNaNBits) {
  ServeResponse response;
  response.request_id = 3;
  response.code = StatusCode::kOk;
  response.kind = kAnswerAte;
  response.ate.value = -0.25;
  // The bootstrap-disabled path leaves std_error/CI as quiet NaN; the
  // wire must round-trip the exact bit pattern.
  response.ate.std_error = std::numeric_limits<double>::quiet_NaN();
  response.ate.ci_low = std::numeric_limits<double>::quiet_NaN();
  response.ate.ci_high = 1.5;
  response.num_units = 42;
  response.response_attribute = "Death";
  response.criterion = 2;
  response.queue_ms = 0.75;
  response.timing.total_s = 0.125;
  response.coalesced = true;

  ServeResponse decoded;
  ASSERT_OK(DecodeResponse(EncodeResponse(response), &decoded));
  EXPECT_EQ(decoded.request_id, response.request_id);
  EXPECT_EQ(decoded.kind, kAnswerAte);
  EXPECT_BIT_EQ(decoded.ate.value, response.ate.value);
  EXPECT_BIT_EQ(decoded.ate.std_error, response.ate.std_error);
  EXPECT_BIT_EQ(decoded.ate.ci_low, response.ate.ci_low);
  EXPECT_BIT_EQ(decoded.ate.ci_high, response.ate.ci_high);
  EXPECT_EQ(decoded.num_units, 42u);
  EXPECT_EQ(decoded.response_attribute, "Death");
  EXPECT_EQ(decoded.criterion, 2);
  EXPECT_BIT_EQ(decoded.queue_ms, response.queue_ms);
  EXPECT_BIT_EQ(decoded.timing.total_s, response.timing.total_s);
  EXPECT_TRUE(decoded.coalesced);
}

TEST(WireTest, EveryStatusCodeSurvivesTheWire) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kFailedPrecondition,
        StatusCode::kOutOfRange, StatusCode::kUnimplemented,
        StatusCode::kInternal, StatusCode::kCancelled,
        StatusCode::kDeadlineExceeded, StatusCode::kResourceExhausted,
        StatusCode::kUnavailable}) {
    EXPECT_EQ(CodeFromWire(WireCode(code)), code)
        << StatusCodeToString(code);
  }
  // Protocol skew decodes as an error, never as OK.
  EXPECT_EQ(CodeFromWire(0xDEAD), StatusCode::kInternal);
}

TEST(WireTest, TruncatedFrameIsAnError) {
  ServeRequest request;
  request.instance = "mimic";
  request.program = "p";
  request.query = "q";
  std::string payload = EncodeRequest(request);
  ServeRequest decoded;
  for (size_t cut = 1; cut < 5; ++cut) {
    Status status = DecodeRequest(
        std::string_view(payload).substr(0, payload.size() - cut), &decoded);
    EXPECT_FALSE(status.ok()) << "cut=" << cut;
  }
}

// ---------------------------------------------------------------------
// Service
// ---------------------------------------------------------------------

class ServeServiceTest : public ::testing::Test {
 protected:
  ServeServiceTest()
      : mimic_(MiniMimicDataset(600, 40)), nis_(MiniNisDataset(900, 30)) {}

  ServeRequest MimicRequest(const std::string& query, uint64_t id) const {
    ServeRequest request;
    request.request_id = id;
    request.instance = "mimic";
    request.program = mimic_.model_text;
    request.query = query;
    return request;
  }

  datagen::Dataset mimic_;
  datagen::Dataset nis_;
};

TEST_F(ServeServiceTest, AdmissionRejectsBadRequests) {
  ServeService service;
  ASSERT_OK(service.RegisterInstance("mimic", mimic_.schema.get(),
                                     mimic_.instance.get()));
  EXPECT_EQ(service
                .RegisterInstance("mimic", mimic_.schema.get(),
                                  mimic_.instance.get())
                .code(),
            StatusCode::kAlreadyExists);

  ServeDriver driver(&service);
  service.Start();

  ServeRequest unknown = MimicRequest("Death[P] <= SelfPay[P]?", 1);
  unknown.instance = "no-such-dataset";
  EXPECT_EQ(driver.Call(unknown).code, StatusCode::kNotFound);

  ServeRequest no_query = MimicRequest("", 2);
  EXPECT_EQ(driver.Call(no_query).code, StatusCode::kInvalidArgument);

  ServeRequest no_program = MimicRequest("Death[P] <= SelfPay[P]?", 3);
  no_program.program.clear();
  EXPECT_EQ(driver.Call(no_program).code, StatusCode::kInvalidArgument);

  // A parse error in the query text comes back through the engine as a
  // wire error, not a hang or a crash.
  ServeRequest bad_query = MimicRequest("this is not CaRL", 4);
  EXPECT_EQ(driver.Call(bad_query).code, StatusCode::kInvalidArgument);

  ServeStats stats = service.Snapshot();
  // no_query never reaches the service (the codec refuses to decode a
  // query-less frame); bad_query is admitted and errors in the engine.
  EXPECT_EQ(stats.rejected, 2u);
}

TEST_F(ServeServiceTest, QueueBoundRejectsResourceExhausted) {
  ServeOptions options;
  options.num_workers = 1;
  options.max_queue_depth = 2;
  ServeService service(options);
  ASSERT_OK(service.RegisterInstance("mimic", mimic_.schema.get(),
                                     mimic_.instance.get()));

  // Not started: everything queues, so the third submit must bounce.
  std::vector<std::future<ServeResponse>> responses;
  std::vector<std::shared_ptr<std::promise<ServeResponse>>> promises;
  for (int i = 0; i < 3; ++i) {
    auto promise = std::make_shared<std::promise<ServeResponse>>();
    responses.push_back(promise->get_future());
    promises.push_back(promise);
    service.Submit(MimicRequest("Death[P] <= SelfPay[P]?", 10 + i),
                   [promise](const ServeResponse& response) {
                     promise->set_value(response);
                   });
  }
  ServeResponse rejected = responses[2].get();
  EXPECT_EQ(rejected.code, StatusCode::kResourceExhausted);

  service.Start();
  EXPECT_EQ(responses[0].get().code, StatusCode::kOk);
  EXPECT_EQ(responses[1].get().code, StatusCode::kOk);
  service.Shutdown();

  ServeStats stats = service.Snapshot();
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.rejected, 1u);
}

// The coalescing contract: N identical requests queued as one wave
// ground exactly once — the leader grounds, every follower rides it.
TEST_F(ServeServiceTest, IdenticalWaveGroundsExactlyOnce) {
  constexpr int kWave = 8;
  ServeOptions options;
  options.num_workers = 4;
  ServeService service(options);
  ASSERT_OK(service.RegisterInstance("mimic", mimic_.schema.get(),
                                     mimic_.instance.get()));

  // Submit BEFORE Start: all requests land in the shard's queue, so the
  // first worker to claim it drains them as one deterministic wave.
  std::vector<std::future<ServeResponse>> responses;
  for (int i = 0; i < kWave; ++i) {
    auto promise = std::make_shared<std::promise<ServeResponse>>();
    responses.push_back(promise->get_future());
    service.Submit(MimicRequest("Death[P] <= SelfPay[P]?", 100 + i),
                   [promise](const ServeResponse& response) {
                     promise->set_value(response);
                   });
  }
  service.Start();

  AteAnswer direct = DirectAnswer(mimic_, "Death[P] <= SelfPay[P]?");
  int coalesced_responses = 0;
  for (auto& future : responses) {
    ServeResponse response = future.get();
    ExpectMatchesDirect(response, direct, "wave");
    if (response.coalesced) ++coalesced_responses;
  }
  service.Shutdown();

  // Exactly one leader; everyone else coalesced.
  EXPECT_EQ(coalesced_responses, kWave - 1);
  ServeStats stats = service.Snapshot();
  EXPECT_EQ(stats.waves, 1u);
  EXPECT_EQ(stats.coalesced, static_cast<uint64_t>(kWave - 1));

  // The shared session grounded the model exactly once for the wave.
  auto session_stats =
      service.ShardSessionStats("mimic", mimic_.model_text);
  ASSERT_TRUE(session_stats.has_value());
  EXPECT_EQ(session_stats->ground_full, 1u);
  EXPECT_EQ(session_stats->ground_extends, 0u);
}

// N concurrent clients multiplexed over shared sessions must see
// answers bit-identical to direct engine calls.
TEST_F(ServeServiceTest, ConcurrentClientsBitIdenticalToDirect) {
  struct Workload {
    const char* instance;
    const datagen::Dataset* dataset;
    const char* query;
    AteAnswer direct;
  };
  std::vector<Workload> workloads = {
      {"mimic", &mimic_, "Death[P] <= SelfPay[P]?", {}},
      {"mimic", &mimic_, "Len[P] <= SelfPay[P]?", {}},
      {"nis", &nis_, "HighBill[P] <= AdmittedToLarge[P]?", {}},
  };
  for (Workload& workload : workloads) {
    workload.direct = DirectAnswer(*workload.dataset, workload.query);
  }

  ServeOptions options;
  options.num_workers = 4;
  ServeService service(options);
  ASSERT_OK(service.RegisterInstance("mimic", mimic_.schema.get(),
                                     mimic_.instance.get()));
  ASSERT_OK(service.RegisterInstance("nis", nis_.schema.get(),
                                     nis_.instance.get()));
  service.Start();

  constexpr int kClients = 6;
  constexpr int kCallsPerClient = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      ServeDriver driver(&service);
      for (int i = 0; i < kCallsPerClient; ++i) {
        const Workload& workload =
            workloads[(c + i) % workloads.size()];
        ServeRequest request;
        request.request_id =
            static_cast<uint64_t>(c) * 1000 + static_cast<uint64_t>(i);
        request.instance = workload.instance;
        request.program = workload.dataset->model_text;
        request.query = workload.query;
        ServeResponse response = driver.Call(request);
        ExpectMatchesDirect(response, workload.direct, workload.query);
        if (response.code != StatusCode::kOk) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  service.Shutdown();
  EXPECT_EQ(failures.load(), 0);

  ServeStats stats = service.Snapshot();
  EXPECT_EQ(stats.admitted, static_cast<uint64_t>(kClients * kCallsPerClient));
  EXPECT_EQ(stats.completed, stats.admitted);
}

// A per-request deadline must surface as kDeadlineExceeded on the wire
// and leave the shared session unpoisoned for the next request.
TEST_F(ServeServiceTest, DeadlineSurfacesWithoutPoisoningTheSession) {
  ServeOptions options;
  options.num_workers = 1;
  ServeService service(options);
  ASSERT_OK(service.RegisterInstance("mimic", mimic_.schema.get(),
                                     mimic_.instance.get()));
  ServeDriver driver(&service);
  service.Start();

  // Warm the shard so later requests measure engine work, not grounding.
  ServeResponse warm = driver.Call(MimicRequest("Death[P] <= SelfPay[P]?", 1));
  ASSERT_EQ(warm.code, StatusCode::kOk) << warm.message;

  // A 1000-replicate bootstrap takes far longer than 0.05 ms: the guard
  // trips mid-execution (or the queue preempts — either way the wire
  // reports kDeadlineExceeded, never a crash or a wrong answer).
  ServeRequest doomed = MimicRequest("Death[P] <= SelfPay[P]?", 2);
  doomed.deadline_ms = 0.05;
  doomed.bootstrap_replicates = 1000;
  ServeResponse dead = driver.Call(doomed);
  EXPECT_EQ(dead.code, StatusCode::kDeadlineExceeded) << dead.message;

  // The shard's session served the aborted pass from staged state only:
  // the follow-up answers bit-identically to a fresh direct engine.
  ServeResponse after = driver.Call(MimicRequest("Death[P] <= SelfPay[P]?", 3));
  AteAnswer direct = DirectAnswer(mimic_, "Death[P] <= SelfPay[P]?");
  ExpectMatchesDirect(after, direct, "post-deadline");

  service.Shutdown();
}

// A request whose deadline expired while queued is preempted BEFORE the
// expensive phase: on a fresh shard it must not trigger engine creation
// (parse + full model grounding) at all — the next live request becomes
// the grounding leader instead.
TEST_F(ServeServiceTest, QueueExpiredRequestDoesNotGround) {
  ServeOptions options;
  options.num_workers = 1;
  ServeService service(options);
  ASSERT_OK(service.RegisterInstance("mimic", mimic_.schema.get(),
                                     mimic_.instance.get()));

  // Submit before Start with a deadline far smaller than the queue wait
  // below: by the time a worker picks it up, it has expired.
  auto promise = std::make_shared<std::promise<ServeResponse>>();
  std::future<ServeResponse> future = promise->get_future();
  ServeRequest doomed = MimicRequest("Death[P] <= SelfPay[P]?", 1);
  doomed.deadline_ms = 0.01;
  service.Submit(doomed, [promise](const ServeResponse& response) {
    promise->set_value(response);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  service.Start();

  ServeResponse dead = future.get();
  EXPECT_EQ(dead.code, StatusCode::kDeadlineExceeded) << dead.message;
  EXPECT_EQ(service.Snapshot().deadline_preempted, 1u);
  // The preempt skipped engine creation entirely: the shard has no
  // session yet, so there is nothing to snapshot.
  EXPECT_FALSE(
      service.ShardSessionStats("mimic", mimic_.model_text).has_value());

  // The next live request grounds (once) and answers normally.
  ServeDriver driver(&service);
  ServeResponse after = driver.Call(MimicRequest("Death[P] <= SelfPay[P]?", 2));
  AteAnswer direct = DirectAnswer(mimic_, "Death[P] <= SelfPay[P]?");
  ExpectMatchesDirect(after, direct, "post-preempt");
  auto session_stats = service.ShardSessionStats("mimic", mimic_.model_text);
  ASSERT_TRUE(session_stats.has_value());
  EXPECT_EQ(session_stats->ground_full, 1u);

  service.Shutdown();
}

TEST_F(ServeServiceTest, ShutdownFailsUnexecutedRequests) {
  ServeService service;  // never started
  ASSERT_OK(service.RegisterInstance("mimic", mimic_.schema.get(),
                                     mimic_.instance.get()));
  auto promise = std::make_shared<std::promise<ServeResponse>>();
  std::future<ServeResponse> future = promise->get_future();
  service.Submit(MimicRequest("Death[P] <= SelfPay[P]?", 1),
                 [promise](const ServeResponse& response) {
                   promise->set_value(response);
                 });
  service.Shutdown();
  EXPECT_EQ(future.get().code, StatusCode::kUnavailable);

  // Post-shutdown submits reject immediately.
  ServeDriver driver(&service);
  EXPECT_EQ(driver.Call(MimicRequest("Death[P] <= SelfPay[P]?", 2)).code,
            StatusCode::kUnavailable);
}

// ---------------------------------------------------------------------
// TCP front door
// ---------------------------------------------------------------------

TEST_F(ServeServiceTest, TcpRoundTripBitIdentical) {
  ServeService service;
  ASSERT_OK(service.RegisterInstance("mimic", mimic_.schema.get(),
                                     mimic_.instance.get()));
  service.Start();
  TcpServer server(&service);
  ASSERT_OK(server.Listen(0));  // ephemeral port
  ASSERT_NE(server.port(), 0);

  AteAnswer direct = DirectAnswer(mimic_, "Death[P] <= SelfPay[P]?");

  TcpClient client;
  ASSERT_OK(client.Connect("127.0.0.1", server.port()));
  ServeResponse response;
  ASSERT_OK(client.Call(MimicRequest("Death[P] <= SelfPay[P]?", 7),
                        &response));
  ExpectMatchesDirect(response, direct, "tcp");
  EXPECT_EQ(response.request_id, 7u);

  // Errors travel the same wire: unknown instance -> kNotFound frame.
  ServeRequest unknown = MimicRequest("Death[P] <= SelfPay[P]?", 8);
  unknown.instance = "nope";
  ASSERT_OK(client.Call(unknown, &response));
  EXPECT_EQ(response.code, StatusCode::kNotFound);
  EXPECT_EQ(response.request_id, 8u);

  // Several clients on separate connections, concurrently.
  constexpr int kClients = 4;
  std::atomic<int> oks{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      TcpClient thread_client;
      ASSERT_OK(thread_client.Connect("127.0.0.1", server.port()));
      ServeResponse thread_response;
      ASSERT_OK(thread_client.Call(
          MimicRequest("Death[P] <= SelfPay[P]?", 100 + c),
          &thread_response));
      ExpectMatchesDirect(thread_response, direct, "tcp-concurrent");
      if (thread_response.code == StatusCode::kOk) {
        oks.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(oks.load(), kClients);

  client.Close();
  server.Stop();
  service.Shutdown();
}

// Tearing the server down while responses are still in flight: the
// response callbacks queued in the ServeService keep their Connection
// alive (shared_ptr) past Stop() and drop their frames once `open`
// clears. The ASan/TSan legs turn a regression here (use-after-free on
// the Connection, write to a closed/reused fd) into a hard failure.
TEST_F(ServeServiceTest, TcpStopWithInFlightResponsesIsSafe) {
  ServeOptions options;
  options.num_workers = 1;  // one worker: later requests queue behind
  ServeService service(options);
  ASSERT_OK(service.RegisterInstance("mimic", mimic_.schema.get(),
                                     mimic_.instance.get()));
  service.Start();
  TcpServer server(&service);
  ASSERT_OK(server.Listen(0));

  // Each client sends one slow request (1000-replicate bootstrap) and
  // blocks for a response that Stop() may sever first — both outcomes
  // are fine; the test asserts teardown safety, not delivery.
  constexpr int kClients = 3;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      TcpClient tcp_client;
      if (!tcp_client.Connect("127.0.0.1", server.port()).ok()) return;
      ServeRequest slow = MimicRequest("Death[P] <= SelfPay[P]?",
                                       static_cast<uint64_t>(200 + c));
      slow.bootstrap_replicates = 1000;
      ServeResponse response;
      (void)tcp_client.Call(slow, &response);
    });
  }

  // Let the requests admit and start executing, then sever the
  // connections while the single worker is still draining the wave.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.Stop();
  for (std::thread& client_thread : clients) client_thread.join();
  // Shutdown drains the remaining requests; their callbacks fire
  // against connections Stop() already tore down and must drop cleanly.
  service.Shutdown();
}

}  // namespace
}  // namespace serve
}  // namespace carl
