// carl_obs: metrics registry semantics (interned handles, concurrent
// increments from ParallelFor workers, histogram bucket boundaries,
// snapshots and deltas, BENCH_JSON byte format), structured tracing
// (ring overflow oldest-drop, Chrome trace JSON validity and span
// nesting), and CARL_LOG level parsing.

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "exec/parallel.h"
#include "fixtures.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "obs/trace.h"

namespace carl {
namespace {

using test_fixtures::ScopedThreads;

TEST(RegistryTest, HandleInterningReturnsSameObject) {
  obs::Registry registry;
  obs::Counter& a = registry.GetCounter("obs_test.interned");
  obs::Counter& b = registry.GetCounter("obs_test.interned");
  EXPECT_EQ(&a, &b);
  obs::Gauge& g1 = registry.GetGauge("obs_test.gauge");
  obs::Gauge& g2 = registry.GetGauge("obs_test.gauge");
  EXPECT_EQ(&g1, &g2);
  EXPECT_EQ(registry.num_metrics(), 2u);
}

TEST(RegistryTest, HandlesStayStableAcrossGrowth) {
  obs::Registry registry;
  obs::Counter& first = registry.GetCounter("obs_test.first");
  first.Increment();
  // Force the backing deque through many registrations; the original
  // handle must keep counting into the same metric.
  for (int i = 0; i < 200; ++i) {
    registry.GetCounter("obs_test.fill_" + std::to_string(i));
  }
  first.Increment();
  EXPECT_EQ(registry.GetCounter("obs_test.first").value(), 2u);
}

TEST(RegistryTest, ConcurrentIncrementsFromParallelForWorkers) {
  ScopedThreads threads(4);
  obs::Registry registry;
  obs::Counter& counter = registry.GetCounter("obs_test.concurrent");
  obs::Histogram& hist = registry.GetHistogram(
      "obs_test.concurrent_hist", std::vector<double>{0.5});
  constexpr size_t kItems = 100000;
  ParallelFor(ExecContext::Global(), kItems,
              [&](size_t begin, size_t end, size_t) {
                for (size_t i = begin; i < end; ++i) {
                  counter.Increment();
                  hist.Record(i % 2 == 0 ? 0.0 : 1.0);
                }
              });
  EXPECT_EQ(counter.value(), kItems);
  EXPECT_EQ(hist.count(), kItems);
  EXPECT_EQ(hist.bucket_count(0) + hist.bucket_count(1), kItems);
  EXPECT_DOUBLE_EQ(hist.sum(), static_cast<double>(kItems / 2));
}

TEST(RegistryTest, HistogramBucketBoundaries) {
  obs::Registry registry;
  obs::Histogram& hist = registry.GetHistogram(
      "obs_test.bounds", std::vector<double>{1.0, 10.0, 100.0});
  hist.Record(0.5);    // bucket 0
  hist.Record(1.0);    // bucket 0: v <= bounds[0] is inclusive
  hist.Record(1.0001); // bucket 1
  hist.Record(10.0);   // bucket 1
  hist.Record(100.0);  // bucket 2
  hist.Record(100.5);  // overflow
  hist.Record(1e9);    // overflow
  EXPECT_EQ(hist.bucket_count(0), 2u);
  EXPECT_EQ(hist.bucket_count(1), 2u);
  EXPECT_EQ(hist.bucket_count(2), 1u);
  EXPECT_EQ(hist.bucket_count(3), 2u);
  EXPECT_EQ(hist.count(), 7u);
}

TEST(RegistryTest, ExponentialBoundsLadder) {
  std::vector<double> bounds = obs::Histogram::ExponentialBounds(1e-6, 4, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1e-6);
  EXPECT_DOUBLE_EQ(bounds[1], 4e-6);
  EXPECT_DOUBLE_EQ(bounds[2], 1.6e-5);
  EXPECT_DOUBLE_EQ(bounds[3], 6.4e-5);
}

TEST(RegistryTest, SnapshotAndDelta) {
  obs::Registry registry;
  obs::Counter& counter = registry.GetCounter("obs_test.delta");
  registry.GetGauge("obs_test.level").Set(2.5);
  counter.Add(3);
  obs::Snapshot before = registry.TakeSnapshot();
  counter.Add(4);
  obs::Snapshot after = registry.TakeSnapshot();

  EXPECT_EQ(before.metrics.size(), 2u);
  EXPECT_DOUBLE_EQ(before.ValueOr("obs_test.level", -1.0), 2.5);
  EXPECT_DOUBLE_EQ(before.ValueOr("obs_test.absent", -1.0), -1.0);
  obs::SnapshotDelta window(before, after);
  EXPECT_EQ(window.CounterDelta("obs_test.delta"), 4u);
  EXPECT_EQ(window.CounterDelta("obs_test.absent"), 0u);
}

TEST(RegistryTest, GlobalRegistryHoldsEngineCounters) {
  // The engine registers its counters on first use; the storage layer's
  // are reachable immediately because storage_stats.h interns on include.
  obs::Counter& allocs =
      obs::Registry::Global().GetCounter("storage.alloc_events");
  uint64_t before = allocs.value();
  allocs.Increment();
  EXPECT_EQ(allocs.value(), before + 1);
}

TEST(BenchJsonTest, ByteCompatibleFormat) {
  // Byte-identical to the historical bench_timer.h printf lines.
  EXPECT_EQ(obs::BenchJsonLine("table2_runtime", "NIS(sim)", "grounding_s",
                               0.125),
            "BENCH_JSON {\"bench\":\"table2_runtime\",\"label\":\"NIS(sim)\","
            "\"metric\":\"grounding_s\",\"value\":0.125}");
  EXPECT_EQ(obs::BenchJsonLine("table3_real_queries", "", "wall_s", 12.3),
            "BENCH_JSON {\"bench\":\"table3_real_queries\","
            "\"metric\":\"wall_s\",\"value\":12.3}");
  // %g formatting, as printf always produced.
  EXPECT_EQ(obs::BenchJsonLine("b", "", "m", 1234567.0),
            "BENCH_JSON {\"bench\":\"b\",\"metric\":\"m\","
            "\"value\":1.23457e+06}");
}

TEST(BenchJsonTest, ToBenchJsonRendersCountersGaugesHistograms) {
  obs::Registry registry;
  registry.GetCounter("obs_test.c").Add(7);
  registry.GetGauge("obs_test.g").Set(1.5);
  obs::Histogram& h =
      registry.GetHistogram("obs_test.h", std::vector<double>{1.0});
  h.Record(0.5);
  h.Record(2.0);
  std::string out =
      obs::ToBenchJson(registry.TakeSnapshot(), "bench", "lbl", "obs_test.");
  EXPECT_NE(out.find("\"metric\":\"obs_test.c\",\"value\":7"),
            std::string::npos);
  EXPECT_NE(out.find("\"metric\":\"obs_test.g\",\"value\":1.5"),
            std::string::npos);
  EXPECT_NE(out.find("\"metric\":\"obs_test.h_count\",\"value\":2"),
            std::string::npos);
  EXPECT_NE(out.find("\"metric\":\"obs_test.h_sum\",\"value\":2.5"),
            std::string::npos);
}

TEST(LoggingTest, ParseLevel) {
  using logging::Level;
  using logging::ParseLevel;
  EXPECT_EQ(ParseLevel(nullptr), Level::kWarn);
  EXPECT_EQ(ParseLevel(""), Level::kWarn);
  EXPECT_EQ(ParseLevel("info"), Level::kInfo);
  EXPECT_EQ(ParseLevel("INFO"), Level::kInfo);
  EXPECT_EQ(ParseLevel("0"), Level::kInfo);
  EXPECT_EQ(ParseLevel("warn"), Level::kWarn);
  EXPECT_EQ(ParseLevel("Warning"), Level::kWarn);
  EXPECT_EQ(ParseLevel("error"), Level::kError);
  EXPECT_EQ(ParseLevel("off"), Level::kOff);
  EXPECT_EQ(ParseLevel("none"), Level::kOff);
  EXPECT_EQ(ParseLevel("3"), Level::kOff);
  EXPECT_EQ(ParseLevel("garbage"), Level::kWarn);
}

// ---------------------------------------------------------------------------
// Tracing. Tests share the process-global trace state, so each one arms
// its own session (StartTracing resets the rings) and disarms before
// asserting on the written file.
// ---------------------------------------------------------------------------

std::string TempTracePath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << "cannot open " << path;
  if (f == nullptr) return "";
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  std::fclose(f);
  return content;
}

// Minimal JSON well-formedness check: balanced braces/brackets outside
// strings, no trailing comma before a closer. Chrome's trace viewer is
// strict about both, and the exporter builds the file with raw fprintf —
// this is the regression net for a misplaced comma.
bool JsonBalanced(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  char last_significant = '\0';
  for (char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
        last_significant = '"';
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        last_significant = c;
        break;
      case '}':
      case ']': {
        if (last_significant == ',') return false;  // trailing comma
        if (stack.empty()) return false;
        char open = stack.back();
        stack.pop_back();
        if ((c == '}') != (open == '{')) return false;
        last_significant = c;
        break;
      }
      default:
        if (c != ' ' && c != '\n' && c != '\t' && c != '\r') {
          last_significant = c;
        }
        break;
    }
  }
  return stack.empty() && !in_string;
}

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(TraceTest, DisarmedSpansRecordNothing) {
  ASSERT_FALSE(obs::TraceArmed());
  size_t before = obs::TraceRetainedEvents();
  {
    CARL_TRACE_SCOPE("obs_test.disarmed");
  }
  EXPECT_EQ(obs::TraceRetainedEvents(), before);
}

TEST(TraceTest, WritesValidChromeTraceWithNestedSpans) {
  const std::string path = TempTracePath("obs_test_trace.json");
  ASSERT_TRUE(obs::StartTracing(path));
  {
    CARL_TRACE_SCOPE("obs_test.outer");
    {
      CARL_TRACE_SCOPE("obs_test.inner");
      // Ensure a nonzero, strictly-contained duration on coarse clocks.
      obs::MonotonicTimer spin;
      while (spin.ElapsedNs() < 100000) {
      }
    }
  }
  ASSERT_TRUE(obs::StopTracingAndWrite());

  const std::string json = ReadFile(path);
  EXPECT_TRUE(JsonBalanced(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // thread names
  EXPECT_NE(json.find("obs_test.outer"), std::string::npos);
  EXPECT_NE(json.find("obs_test.inner"), std::string::npos);

  // Nesting: the inner span's [ts, ts+dur) must lie inside the outer's.
  // Parse the two X events by hand (fixed field order from the writer).
  auto event_window = [&json](const std::string& name, double* ts,
                              double* dur) {
    size_t at = json.find("\"name\":\"" + name + "\"");
    ASSERT_NE(at, std::string::npos) << name;
    size_t ts_at = json.find("\"ts\":", at);
    size_t dur_at = json.find("\"dur\":", at);
    ASSERT_NE(ts_at, std::string::npos);
    ASSERT_NE(dur_at, std::string::npos);
    *ts = std::stod(json.substr(ts_at + 5));
    *dur = std::stod(json.substr(dur_at + 6));
  };
  double outer_ts = 0, outer_dur = 0, inner_ts = 0, inner_dur = 0;
  event_window("obs_test.outer", &outer_ts, &outer_dur);
  event_window("obs_test.inner", &inner_ts, &inner_dur);
  EXPECT_GE(inner_ts, outer_ts);
  EXPECT_LE(inner_ts + inner_dur, outer_ts + outer_dur);
  EXPECT_GT(inner_dur, 0.0);
}

TEST(TraceTest, RingOverflowDropsOldestEvents) {
  const std::string path = TempTracePath("obs_test_overflow.json");
  ASSERT_TRUE(obs::StartTracing(path));
  const size_t capacity = obs::TraceRingCapacity();
  {
    CARL_TRACE_SCOPE("obs_test.first_event");
  }
  for (size_t i = 0; i < capacity; ++i) {
    CARL_TRACE_SCOPE("obs_test.filler");
  }
  {
    CARL_TRACE_SCOPE("obs_test.last_event");
  }
  ASSERT_TRUE(obs::StopTracingAndWrite());

  const std::string json = ReadFile(path);
  EXPECT_TRUE(JsonBalanced(json));
  // first_event was pushed out by capacity+1 later events; the tail
  // (including the newest span) survived.
  EXPECT_EQ(json.find("obs_test.first_event"), std::string::npos);
  EXPECT_NE(json.find("obs_test.last_event"), std::string::npos);
  EXPECT_EQ(CountOccurrences(json, "\"name\":\"obs_test.filler\""),
            capacity - 1);
}

TEST(TraceTest, WorkerSpansLandOnPerWorkerRows) {
  ScopedThreads threads(4);
  ThreadPool& pool = ExecContext::Global().pool();
  const int workers = pool.num_threads();
  ASSERT_GE(workers, 1);

  const std::string path = TempTracePath("obs_test_workers.json");
  ASSERT_TRUE(obs::StartTracing(path));
  // ParallelFor hands chunks out through a shared cursor, so on a loaded
  // machine the calling thread can drain every chunk before a worker
  // wakes. Submit one rendezvous task per worker instead: no task can
  // finish until all have started, so each task necessarily runs on a
  // distinct pool worker and every worker records a span.
  std::atomic<int> started{0};
  std::atomic<int> done{0};
  for (int i = 0; i < workers; ++i) {
    pool.Submit([&, workers] {
      started.fetch_add(1);
      while (started.load() < workers) std::this_thread::yield();
      {
        CARL_TRACE_SCOPE("obs_test.worker_chunk");
      }
      done.fetch_add(1);
    });
  }
  while (done.load() < workers) std::this_thread::yield();
  ASSERT_TRUE(obs::StopTracingAndWrite());

  const std::string json = ReadFile(path);
  EXPECT_TRUE(JsonBalanced(json));
  EXPECT_NE(json.find("obs_test.worker_chunk"), std::string::npos);
  // Every spawned worker recorded a span, so every per-worker row is
  // labeled by its M event.
  for (int i = 1; i <= workers; ++i) {
    const std::string label =
        "\"args\":{\"name\":\"worker-" + std::to_string(i) + "\"}";
    EXPECT_NE(json.find(label), std::string::npos) << label;
  }
}

TEST(TraceTest, SecondSessionDoesNotReplayFirstSessionEvents) {
  const std::string path1 = TempTracePath("obs_test_s1.json");
  ASSERT_TRUE(obs::StartTracing(path1));
  {
    CARL_TRACE_SCOPE("obs_test.session_one");
  }
  ASSERT_TRUE(obs::StopTracingAndWrite());

  const std::string path2 = TempTracePath("obs_test_s2.json");
  ASSERT_TRUE(obs::StartTracing(path2));
  {
    CARL_TRACE_SCOPE("obs_test.session_two");
  }
  ASSERT_TRUE(obs::StopTracingAndWrite());

  const std::string json = ReadFile(path2);
  EXPECT_EQ(json.find("obs_test.session_one"), std::string::npos);
  EXPECT_NE(json.find("obs_test.session_two"), std::string::npos);
}

TEST(TimerTest, MonotonicTimerMeasuresElapsed) {
  obs::MonotonicTimer timer;
  while (timer.ElapsedNs() < 1000000) {
  }
  EXPECT_GE(timer.Seconds(), 0.001);
  timer.Reset();
  EXPECT_LT(timer.Seconds(), 0.5);
}

}  // namespace
}  // namespace carl
