# Resolves GTest::gtest_main: prefer the system package, fall back to
# FetchContent — which itself prefers a local source tree (the Debian
# googletest package installs one at /usr/src/googletest) so offline
# builds work, and only then reaches for the network.

find_package(GTest QUIET)
if(NOT GTest_FOUND)
  include(FetchContent)
  if(EXISTS /usr/src/googletest/CMakeLists.txt)
    FetchContent_Declare(googletest SOURCE_DIR /usr/src/googletest)
  else()
    FetchContent_Declare(googletest
      URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz)
  endif()
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)
  FetchContent_MakeAvailable(googletest)
  if(NOT TARGET GTest::gtest_main)
    add_library(GTest::gtest_main ALIAS gtest_main)
  endif()
endif()
