// Peer-review bias analysis (the paper's REVIEWDATA study, §6.2).
//
// Generates a realistic-scale review dataset (papers, authors,
// collaborations, venues — half single-blind, half double-blind), then:
//   1. contrasts correlation with causation per review mode (Fig 7a),
//   2. decomposes the effect into isolated and relational parts (Fig 7b),
//   3. shows how the conclusion would differ with a naive reading.
//
//   build/peer_review_bias

#include <cstdio>

#include "carl/carl.h"
#include "common/str_util.h"
#include "datagen/review.h"

using namespace carl;

int main() {
  datagen::ReviewConfig config = datagen::RealisticReviewConfig();
  std::printf(
      "Generating simulated REVIEWDATA: %zu authors, %zu papers, %zu venues "
      "(%.0f%% single-blind)...\n",
      config.num_authors, config.num_papers, config.num_venues,
      config.single_blind_fraction * 100);
  Result<datagen::ReviewData> data = datagen::GenerateReviewData(config);
  CARL_CHECK_OK(data.status());

  Result<RelationalCausalModel> model = RelationalCausalModel::Parse(
      *data->dataset.schema, data->dataset.model_text);
  CARL_CHECK_OK(model.status());
  std::printf("\nCausal model:\n%s\n", model->ToString().c_str());

  Result<std::unique_ptr<CarlEngine>> engine =
      CarlEngine::Create(data->dataset.instance.get(), std::move(*model));
  CARL_CHECK_OK(engine.status());

  EngineOptions options;
  options.bootstrap_replicates = 200;

  std::printf("%-14s %-12s %-12s %-22s\n", "Review mode", "Pearson r",
              "ATE", "95% CI");
  for (auto [mode, literal] : {std::pair{"single-blind", "TRUE"},
                               std::pair{"double-blind", "FALSE"}}) {
    std::string query = StrFormat(
        "AVG_Score[A] <= Prestige[A]? WHERE Submitted(S, C), Blind[C] = %s",
        literal);
    Result<QueryAnswer> answer = (*engine)->Answer(query, options);
    CARL_CHECK_OK(answer.status());
    const AteAnswer& ate = *answer->ate;
    bool significant = ate.ate.ci_low > 0.0 || ate.ate.ci_high < 0.0;
    std::printf("%-14s %-12.3f %-+12.3f [%+.3f, %+.3f]%s\n", mode,
                ate.naive.correlation, ate.ate.value, ate.ate.ci_low,
                ate.ate.ci_high, significant ? "  *significant*" : "");
  }

  std::printf(
      "\nReading correlation as causation would claim double-blind review\n"
      "does not reduce prestige bias; the causal analysis shows the effect\n"
      "survives only under single-blind review.\n");

  // Peer effects at single-blind venues.
  Result<QueryAnswer> peers = (*engine)->Answer(
      "AVG_Score[A] <= Prestige[A]? WHEN MORE THAN 1/3 PEERS TREATED "
      "WHERE Submitted(S, C), Blind[C] = TRUE",
      options);
  CARL_CHECK_OK(peers.status());
  const RelationalEffectsAnswer& effects = *peers->effects;
  std::printf("\nPeer effects (single-blind):\n");
  std::printf("  own prestige (AIE):          %+.3f +/- %.3f\n",
              effects.aie.value, effects.aie.std_error);
  std::printf("  collaborators' prestige (ARE): %+.3f +/- %.3f\n",
              effects.are.value, effects.are.std_error);
  std::printf("  overall (AOE = AIE + ARE):   %+.3f\n", effects.aoe.value);
  std::printf(
      "\nAn author's own prestige matters more than the collaborators'\n"
      "(paper Fig 7b), but interference is real: ignoring it (SUTVA) would\n"
      "misattribute the spill-over to the author.\n");
  return 0;
}
