// Healthcare analysis (the paper's MIMIC-III study, §6.2, queries 34a/34b):
// what is the effect of being uninsured (self-pay) on ICU mortality and on
// length of stay?
//
// Demonstrates covariate detection from the causal model: the engine
// adjusts for the parents of SelfPay (demographics + diagnosis — the
// "deferred admission" confounder) and leaves mediators alone, so the
// reported ATE is the total causal effect.
//
//   build/healthcare_insurance

#include <cstdio>

#include "carl/carl.h"
#include "datagen/mimic.h"

using namespace carl;

int main() {
  datagen::MimicConfig config;
  config.num_patients = 20000;
  config.num_caregivers = 700;
  std::printf("Generating simulated MIMIC-III (%zu patients)...\n",
              config.num_patients);
  Result<datagen::Dataset> data = datagen::GenerateMimic(config);
  CARL_CHECK_OK(data.status());

  Result<RelationalCausalModel> model =
      RelationalCausalModel::Parse(*data->schema, data->model_text);
  CARL_CHECK_OK(model.status());
  std::printf("\nCausal model (paper §6.1):\n%s\n", model->ToString().c_str());

  Result<std::unique_ptr<CarlEngine>> engine =
      CarlEngine::Create(data->instance.get(), std::move(*model));
  CARL_CHECK_OK(engine.status());

  EngineOptions options;
  options.check_criterion = true;  // verify Theorem 5.2's condition

  // Query (34-a): mortality.
  Result<QueryAnswer> death =
      (*engine)->Answer("Death[P] <= SelfPay[P]?", options);
  CARL_CHECK_OK(death.status());
  std::printf("Death[P] <= SelfPay[P]?\n");
  std::printf("  mortality, self-pay:    %5.1f%%\n",
              death->ate->naive.treated_mean * 100);
  std::printf("  mortality, insured:     %5.1f%%\n",
              death->ate->naive.control_mean * 100);
  std::printf("  naive difference:       %+5.1f pp\n",
              death->ate->naive.difference * 100);
  std::printf("  ATE:                    %+5.1f pp\n",
              death->ate->ate.value * 100);
  std::printf("  adjustment criterion:   %s\n",
              *death->ate->criterion_ok ? "holds" : "VIOLATED");

  // Query (34-b): length of stay.
  Result<QueryAnswer> len = (*engine)->Answer("Len[P] <= SelfPay[P]?");
  CARL_CHECK_OK(len.status());
  std::printf("\nLen[P] <= SelfPay[P]?\n");
  std::printf("  naive difference:       %+7.1f hours\n",
              len->ate->naive.difference);
  std::printf("  ATE:                    %+7.1f hours\n",
              len->ate->ate.value);

  std::printf(
      "\nInterpretation (paper §6.2): the raw mortality gap is driven by\n"
      "self-payers deferring admission until severely ill — caregivers do\n"
      "not discriminate. The length-of-stay effect is real but much\n"
      "smaller than the naive contrast suggests.\n");
  return 0;
}
