// Hospital billing analysis (the paper's NIS study, §6.2, query 35): are
// patients admitted to large hospitals charged more?
//
// Shows the paper's Simpson-style reversal — large hospitals look ~33pp
// more expensive because they receive the sickest patients, yet all else
// equal they are cheaper — and compares all four estimators on the same
// unit table.
//
//   build/hospital_billing

#include <cstdio>

#include "carl/carl.h"
#include "datagen/nis.h"

using namespace carl;

int main() {
  datagen::NisConfig config;
  config.num_admissions = 100000;
  std::printf("Generating simulated NIS (%zu admissions, %zu hospitals)...\n",
              config.num_admissions, config.num_hospitals);
  Result<datagen::Dataset> data = datagen::GenerateNis(config);
  CARL_CHECK_OK(data.status());

  Result<RelationalCausalModel> model =
      RelationalCausalModel::Parse(*data->schema, data->model_text);
  CARL_CHECK_OK(model.status());
  Result<std::unique_ptr<CarlEngine>> engine =
      CarlEngine::Create(data->instance.get(), std::move(*model));
  CARL_CHECK_OK(engine.status());

  Result<QueryAnswer> naive_run =
      (*engine)->Answer("HighBill[P] <= AdmittedToLarge[P]?");
  CARL_CHECK_OK(naive_run.status());
  const AteAnswer& first = *naive_run->ate;
  std::printf("\nHighBill[P] <= AdmittedToLarge[P]?\n");
  std::printf("  P(high bill | large):  %5.1f%%\n",
              first.naive.treated_mean * 100);
  std::printf("  P(high bill | small):  %5.1f%%\n",
              first.naive.control_mean * 100);
  std::printf("  naive difference:      %+5.1f pp   <- looks 'less affordable'\n",
              first.naive.difference * 100);

  std::printf("\nAdjusted ATE by estimator:\n");
  for (EstimatorKind kind :
       {EstimatorKind::kRegression, EstimatorKind::kMatching,
        EstimatorKind::kIpw, EstimatorKind::kStratification}) {
    EngineOptions options;
    options.estimator = kind;
    Result<QueryAnswer> answer =
        (*engine)->Answer("HighBill[P] <= AdmittedToLarge[P]?", options);
    if (answer.ok()) {
      std::printf("  %-16s %+6.1f pp\n", EstimatorKindToString(kind),
                  answer->ate->ate.value * 100);
    } else {
      std::printf("  %-16s failed: %s\n", EstimatorKindToString(kind),
                  answer.status().ToString().c_str());
    }
  }

  std::printf(
      "\nEvery estimator reverses the naive sign: severity routes patients\n"
      "to large hospitals AND inflates bills; once adjusted, economies of\n"
      "scale make the large hospital the cheaper choice (paper §6.2, [10]).\n");
  return 0;
}
