// carl_cli: drive a complete CaRL analysis from files — no C++ required.
//
// Usage:
//   build/carl_cli <schema.txt> <model.carl> <query> [--facts P=file.csv]...
//                    [--attrs K=file.csv]... [--embedding mean|median|...]
//                    [--estimator regression|matching|ipw|stratification]
//                    [--bootstrap N] [--explain]
//
//   schema.txt  entity/relationship/attribute declarations
//               (relational/schema_parser.h format)
//   model.carl  CaRL rules (lang/parser.h format)
//   query       a CaRL causal query, e.g. "AVG_Score[A] <= Prestige[A]?"
//   --facts     ground facts for predicate P (one column per argument)
//   --attrs     attribute table whose first K columns are the unit key
//
// With no file arguments it runs a built-in demo on the Figure 2 toy data.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "carl/carl.h"
#include "common/str_util.h"
#include "datagen/review_toy.h"
#include "relational/instance_io.h"
#include "relational/schema_parser.h"

using namespace carl;

namespace {

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream f(path);
  if (!f.is_open()) return Status::NotFound("cannot open: " + path);
  std::ostringstream buffer;
  buffer << f.rdbuf();
  return buffer.str();
}

int RunDemo() {
  std::printf("(no files given - running the built-in Figure 2 demo)\n\n");
  Result<datagen::Dataset> data = datagen::MakeReviewToy();
  CARL_CHECK_OK(data.status());
  Result<RelationalCausalModel> model =
      RelationalCausalModel::Parse(*data->schema, data->model_text);
  CARL_CHECK_OK(model.status());
  Result<std::unique_ptr<CarlEngine>> engine =
      CarlEngine::Create(data->instance.get(), std::move(*model));
  CARL_CHECK_OK(engine.status());
  Result<QueryExplanation> explanation =
      ExplainQuery(engine->get(), "AVG_Score[A] <= Prestige[A]?");
  CARL_CHECK_OK(explanation.status());
  std::printf("%s\n", explanation->ToString().c_str());
  Result<QueryAnswer> answer =
      (*engine)->Answer("AVG_Score[A] <= Prestige[A]?");
  CARL_CHECK_OK(answer.status());
  std::printf("naive difference: %+.3f\nATE:              %+.3f\n",
              answer->ate->naive.difference, answer->ate->ate.value);
  return 0;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) return RunDemo();

  Result<std::string> schema_text = ReadFile(argv[1]);
  if (!schema_text.ok()) return Fail(schema_text.status());
  Result<Schema> schema = ParseSchema(*schema_text);
  if (!schema.ok()) return Fail(schema.status());

  Result<std::string> model_text = ReadFile(argv[2]);
  if (!model_text.ok()) return Fail(model_text.status());
  std::string query = argv[3];

  Instance db(&*schema);
  EngineOptions options;
  bool explain = false;

  for (int i = 4; i < argc; ++i) {
    std::string arg = argv[i];
    auto split_eq = [](const std::string& s) {
      size_t eq = s.find('=');
      return std::make_pair(s.substr(0, eq),
                            eq == std::string::npos ? "" : s.substr(eq + 1));
    };
    if (arg == "--explain") {
      explain = true;
    } else if (arg == "--facts" && i + 1 < argc) {
      auto [pred, path] = split_eq(argv[++i]);
      Result<CsvDocument> csv = ReadCsvFile(path);
      if (!csv.ok()) return Fail(csv.status());
      Status loaded = LoadFactsCsv(*csv, pred, &db);
      if (!loaded.ok()) return Fail(loaded);
    } else if (arg == "--attrs" && i + 1 < argc) {
      auto [key, path] = split_eq(argv[++i]);
      Result<CsvDocument> csv = ReadCsvFile(path);
      if (!csv.ok()) return Fail(csv.status());
      Status loaded = LoadAttributesCsv(*csv, std::atoi(key.c_str()), &db);
      if (!loaded.ok()) return Fail(loaded);
    } else if (arg == "--embedding" && i + 1 < argc) {
      Result<EmbeddingKind> kind = ParseEmbeddingKind(argv[++i]);
      if (!kind.ok()) return Fail(kind.status());
      options.embedding = *kind;
    } else if (arg == "--estimator" && i + 1 < argc) {
      Result<EstimatorKind> kind = ParseEstimatorKind(argv[++i]);
      if (!kind.ok()) return Fail(kind.status());
      options.estimator = *kind;
    } else if (arg == "--bootstrap" && i + 1 < argc) {
      options.bootstrap_replicates = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 1;
    }
  }

  Result<RelationalCausalModel> model =
      RelationalCausalModel::Parse(*schema, *model_text);
  if (!model.ok()) return Fail(model.status());
  Result<std::unique_ptr<CarlEngine>> engine =
      CarlEngine::Create(&db, std::move(*model));
  if (!engine.ok()) return Fail(engine.status());

  if (explain) {
    Result<QueryExplanation> explanation =
        ExplainQuery(engine->get(), query, options);
    if (!explanation.ok()) return Fail(explanation.status());
    std::printf("%s\n", explanation->ToString().c_str());
  }

  Result<QueryAnswer> answer = (*engine)->Answer(query, options);
  if (!answer.ok()) return Fail(answer.status());
  if (answer->ate.has_value()) {
    const AteAnswer& ate = *answer->ate;
    std::printf("units: %zu (dropped %zu)\n", ate.num_units,
                ate.dropped_units);
    std::printf("naive difference: %+.4f   (treated %.4f, control %.4f)\n",
                ate.naive.difference, ate.naive.treated_mean,
                ate.naive.control_mean);
    std::printf("correlation:      %+.4f\n", ate.naive.correlation);
    std::printf("ATE:              %+.4f", ate.ate.value);
    if (options.bootstrap_replicates > 0) {
      std::printf("  [%+.4f, %+.4f]", ate.ate.ci_low, ate.ate.ci_high);
    }
    std::printf("\n");
  } else {
    const RelationalEffectsAnswer& effects = *answer->effects;
    std::printf("units: %zu\n", effects.num_units);
    std::printf("AIE: %+.4f   ARE: %+.4f   AOE: %+.4f\n",
                effects.aie.value, effects.are.value, effects.aoe.value);
  }
  return 0;
}
