// Model inspection: the static-analysis side of CaRL.
//
// Before trusting an estimate, an analyst wants to see *what the engine
// will do*: which units, which adjustment set, whether interference is
// present, whether the identification criterion holds — and the grounded
// causal graph itself. This example prints the query plan for the paper's
// queries and exports Figure 4/5-style DOT renderings.
//
//   build/model_inspection [out.dot]

#include <cstdio>
#include <fstream>

#include "carl/carl.h"
#include "datagen/review_toy.h"

using namespace carl;

int main(int argc, char** argv) {
  Result<datagen::Dataset> data = datagen::MakeReviewToy();
  CARL_CHECK_OK(data.status());
  Result<RelationalCausalModel> model =
      RelationalCausalModel::Parse(*data->schema, data->model_text);
  CARL_CHECK_OK(model.status());
  std::printf("Relational causal model:\n%s\n", model->ToString().c_str());

  Result<std::unique_ptr<CarlEngine>> engine =
      CarlEngine::Create(data->instance.get(), std::move(*model));
  CARL_CHECK_OK(engine.status());

  EngineOptions options;
  options.check_criterion = true;

  for (const char* query :
       {"AVG_Score[A] <= Prestige[A]?", "Score[S] <= Prestige[A]?",
        "Qualification[A] <= Prestige[A]?"}) {
    Result<QueryExplanation> explanation =
        ExplainQuery(engine->get(), query, options);
    CARL_CHECK_OK(explanation.status());
    std::printf("%s\n", explanation->ToString().c_str());
  }

  // Export the grounded causal graph (Figures 4-5 of the paper).
  Result<std::string> dot = ExportDot((*engine)->grounded());
  CARL_CHECK_OK(dot.status());
  const char* path = argc > 1 ? argv[1] : "review_toy_graph.dot";
  std::ofstream out(path);
  out << *dot;
  std::printf("Grounded causal graph written to %s (%zu nodes); render\n"
              "with: dot -Tpng %s -o graph.png\n",
              path, (*engine)->grounded().graph().num_nodes(), path);
  return 0;
}
