// Quickstart: the paper's running example (Figure 2) end to end.
//
// Builds the REVIEWDATA toy instance in code, declares the causal model of
// Example 3.4 with CaRL rules, and answers the paper's headline question:
// does an author's institutional prestige causally affect review scores?
//
//   build/quickstart

#include <cstdio>

#include "carl/carl.h"

using namespace carl;

int main() {
  // --- 1. Declare the relational causal schema (paper §3.1) --------------
  Schema schema;
  CARL_CHECK_OK(schema.AddEntity("Person").status());
  CARL_CHECK_OK(schema.AddEntity("Submission").status());
  CARL_CHECK_OK(schema.AddEntity("Conference").status());
  CARL_CHECK_OK(
      schema.AddRelationship("Author", {"Person", "Submission"}).status());
  CARL_CHECK_OK(
      schema.AddRelationship("Submitted", {"Submission", "Conference"})
          .status());
  CARL_CHECK_OK(
      schema.AddAttribute("Prestige", "Person", true, ValueType::kBool)
          .status());
  CARL_CHECK_OK(schema.AddAttribute("Qualification", "Person").status());
  CARL_CHECK_OK(schema.AddAttribute("Score", "Submission").status());
  // Quality is latent: declared, never observed (paper Example 3.1).
  CARL_CHECK_OK(
      schema.AddAttribute("Quality", "Submission", /*observed=*/false)
          .status());
  CARL_CHECK_OK(
      schema.AddAttribute("Blind", "Conference", true, ValueType::kBool)
          .status());

  // --- 2. Load the instance (Figure 2) ------------------------------------
  Instance db(&schema);
  struct AuthorRow { const char* name; bool prestige; double hindex; };
  for (AuthorRow a : {AuthorRow{"Bob", true, 50},
                      AuthorRow{"Carlos", false, 20},
                      AuthorRow{"Eva", true, 2}}) {
    CARL_CHECK_OK(db.AddFact("Person", {a.name}));
    CARL_CHECK_OK(db.SetAttribute("Prestige", {a.name}, Value(a.prestige)));
    CARL_CHECK_OK(
        db.SetAttribute("Qualification", {a.name}, Value(a.hindex)));
  }
  struct SubRow { const char* name; double score; const char* venue; };
  for (SubRow s : {SubRow{"s1", 0.75, "ConfDB"}, SubRow{"s2", 0.4, "ConfAI"},
                   SubRow{"s3", 0.1, "ConfAI"}}) {
    CARL_CHECK_OK(db.AddFact("Submission", {s.name}));
    CARL_CHECK_OK(db.SetAttribute("Score", {s.name}, Value(s.score)));
    CARL_CHECK_OK(db.AddFact("Submitted", {s.name, s.venue}));
  }
  CARL_CHECK_OK(db.AddFact("Conference", {"ConfDB"}));
  CARL_CHECK_OK(db.AddFact("Conference", {"ConfAI"}));
  CARL_CHECK_OK(db.SetAttribute("Blind", {"ConfDB"}, Value(true)));
  CARL_CHECK_OK(db.SetAttribute("Blind", {"ConfAI"}, Value(false)));
  for (auto [person, sub] :
       {std::pair{"Bob", "s1"}, {"Eva", "s1"}, {"Eva", "s2"}, {"Eva", "s3"},
        {"Carlos", "s3"}}) {
    CARL_CHECK_OK(db.AddFact("Author", {person, sub}));
  }

  // --- 3. The causal model: Example 3.4, rules (5)-(8) + rule (12) --------
  Result<RelationalCausalModel> model =
      RelationalCausalModel::Parse(schema, R"(
        Prestige[A]  <= Qualification[A]               WHERE Person(A)
        Quality[S]   <= Qualification[A], Prestige[A]  WHERE Author(A, S)
        Score[S]     <= Prestige[A]                    WHERE Author(A, S)
        Score[S]     <= Quality[S]                     WHERE Submission(S)
        AVG_Score[A] <= Score[S]                       WHERE Author(A, S)
      )");
  CARL_CHECK_OK(model.status());

  Result<std::unique_ptr<CarlEngine>> engine =
      CarlEngine::Create(&db, std::move(*model));
  CARL_CHECK_OK(engine.status());

  // The grounded causal graph (Figures 4-5).
  const GroundedModel& grounded = (*engine)->grounded();
  std::printf("Grounded causal graph: %zu nodes, %zu edges\n",
              grounded.graph().num_nodes(), grounded.graph().num_edges());

  // --- 4. Ask causal queries (paper §3.3) ---------------------------------
  // ATE of prestige on an author's average review score (query 36).
  Result<QueryAnswer> ate = (*engine)->Answer("AVG_Score[A] <= Prestige[A]?");
  CARL_CHECK_OK(ate.status());
  std::printf("\nQuery: AVG_Score[A] <= Prestige[A]?\n");
  std::printf("  units (authors):        %zu\n", ate->ate->num_units);
  std::printf("  naive diff of averages: %+.3f\n",
              ate->ate->naive.difference);
  std::printf("  ATE (adjusted):         %+.3f\n", ate->ate->ate.value);

  // Isolated vs relational effects (query 37).
  Result<QueryAnswer> peers = (*engine)->Answer(
      "AVG_Score[A] <= Prestige[A]? WHEN ALL PEERS TREATED");
  CARL_CHECK_OK(peers.status());
  std::printf("\nQuery: ... WHEN ALL PEERS TREATED\n");
  std::printf("  AIE (own prestige):     %+.3f\n",
              peers->effects->aie.value);
  std::printf("  ARE (peers' prestige):  %+.3f\n",
              peers->effects->are.value);
  std::printf("  AOE (= AIE + ARE):      %+.3f\n",
              peers->effects->aoe.value);

  // Auto-unification: ask about Score (a submission attribute) directly;
  // the engine derives the aggregation along the relational path (§4.3).
  Result<QueryAnswer> unified = (*engine)->Answer("Score[S] <= Prestige[A]?");
  CARL_CHECK_OK(unified.status());
  std::printf("\nQuery: Score[S] <= Prestige[A]?  (auto-unified)\n");
  std::printf("  derived response:       %s\n",
              unified->ate->response_attribute.c_str());
  std::printf("  ATE:                    %+.3f\n", unified->ate->ate.value);

  std::printf("\nNote: with 3 authors these numbers are illustrative; see\n"
              "examples/peer_review_bias.cpp for a full-scale analysis.\n");
  return 0;
}
